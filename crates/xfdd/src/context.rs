//! Contexts: the facts accumulated along a path while composing xFDDs.
//!
//! The composition algorithms of the paper (Figure 8 and Appendix E) thread a
//! `context` — the set of tests already decided on the current path, with
//! their outcomes — through their recursion. The context is used to
//! (1) `refine` away redundant or contradicting tests and (2) answer the
//! field/field and field/value equality questions that arise when an action
//! sequence is composed with a state test.

use crate::test::Test;
use snap_lang::{Field, Value};

/// A set of decided tests along the current composition path.
#[derive(Clone, Debug, Default)]
pub struct Context {
    facts: Vec<(Test, bool)>,
}

impl Context {
    /// The empty context.
    pub fn new() -> Self {
        Context::default()
    }

    /// Extend the context with the outcome of a test.
    pub fn with(&self, test: Test, outcome: bool) -> Context {
        let mut c = self.clone();
        c.facts.push((test, outcome));
        c
    }

    /// How many facts the context holds (used only by tests).
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Is the context empty?
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// The constant value of field `f` implied by the context, if any.
    /// Prefix facts do not pin down a single value and are ignored here.
    pub fn definite_value(&self, f: &Field) -> Option<Value> {
        for (t, outcome) in &self.facts {
            if let Test::FieldValue(tf, v) = t {
                if *outcome && tf == f && !matches!(v, Value::Prefix(_)) {
                    return Some(v.clone());
                }
            }
        }
        None
    }

    /// Does the context determine the outcome of `test`?
    ///
    /// Returns `Some(true)` / `Some(false)` when the recorded facts imply the
    /// test must pass / fail, and `None` when it cannot be decided.
    pub fn implies(&self, test: &Test) -> Option<bool> {
        // Exact (or symmetric, for field-field) matches first.
        for (t, outcome) in &self.facts {
            if t == test {
                return Some(*outcome);
            }
            if let (Test::FieldField(a1, b1), Test::FieldField(a2, b2)) = (t, test) {
                if a1 == b2 && b1 == a2 {
                    return Some(*outcome);
                }
            }
        }
        match test {
            Test::FieldValue(f, v) => self.implies_field_value(f, v),
            Test::FieldField(f, g) => {
                if f == g {
                    return Some(true);
                }
                match (self.definite_value(f), self.definite_value(g)) {
                    (Some(a), Some(b)) => Some(a == b),
                    _ => None,
                }
            }
            Test::State { .. } => None,
        }
    }

    fn implies_field_value(&self, f: &Field, v: &Value) -> Option<bool> {
        for (t, outcome) in &self.facts {
            let (tf, tv) = match t {
                Test::FieldValue(tf, tv) => (tf, tv),
                _ => continue,
            };
            if tf != f {
                continue;
            }
            if *outcome {
                // We know the field matches `tv`.
                match (tv, v) {
                    // Exact known value: decide anything.
                    (a, b) if a == b => return Some(true),
                    (Value::Ip(ip), Value::Prefix(p)) => return Some(p.contains(*ip)),
                    (Value::Ip(_), Value::Ip(_)) => return Some(false),
                    (Value::Prefix(known), Value::Prefix(q)) => {
                        if q.contains_prefix(known) {
                            return Some(true);
                        }
                        if !q.overlaps(known) {
                            return Some(false);
                        }
                        // Overlapping but not containing: undecided; keep looking.
                    }
                    // The field may still be anywhere inside `known`:
                    // undecided unless the address falls outside it.
                    (Value::Prefix(known), Value::Ip(ip)) if !known.contains(*ip) => {
                        return Some(false)
                    }
                    // Two distinct non-IP constants cannot both match.
                    (a, b) if !matches!(a, Value::Prefix(_)) && !matches!(b, Value::Prefix(_)) => {
                        return Some(false)
                    }
                    _ => {}
                }
            } else {
                // We know the field does *not* match `tv`.
                match (tv, v) {
                    (a, b) if a == b => return Some(false),
                    (Value::Prefix(known), Value::Ip(ip)) if known.contains(*ip) => {
                        return Some(false)
                    }
                    (Value::Prefix(known), Value::Prefix(q)) if known.contains_prefix(q) => {
                        return Some(false)
                    }
                    _ => {}
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(f: Field, v: Value) -> Test {
        Test::FieldValue(f, v)
    }

    #[test]
    fn exact_fact_is_implied() {
        let t = fv(Field::SrcPort, Value::Int(53));
        let ctx = Context::new().with(t.clone(), true);
        assert_eq!(ctx.implies(&t), Some(true));
        let ctx = Context::new().with(t.clone(), false);
        assert_eq!(ctx.implies(&t), Some(false));
        assert!(Context::new().implies(&t).is_none());
    }

    #[test]
    fn distinct_constants_exclude_each_other() {
        let ctx = Context::new().with(fv(Field::SrcPort, Value::Int(53)), true);
        assert_eq!(
            ctx.implies(&fv(Field::SrcPort, Value::Int(80))),
            Some(false)
        );
        assert_eq!(ctx.implies(&fv(Field::DstPort, Value::Int(80))), None);
    }

    #[test]
    fn ip_inside_prefix_is_implied() {
        let ctx = Context::new().with(fv(Field::DstIp, Value::ip(10, 0, 6, 9)), true);
        assert_eq!(
            ctx.implies(&fv(Field::DstIp, Value::prefix(10, 0, 6, 0, 24))),
            Some(true)
        );
        assert_eq!(
            ctx.implies(&fv(Field::DstIp, Value::prefix(10, 0, 5, 0, 24))),
            Some(false)
        );
    }

    #[test]
    fn prefix_knowledge_decides_sub_and_disjoint_prefixes() {
        let ctx = Context::new().with(fv(Field::DstIp, Value::prefix(10, 0, 6, 0, 25)), true);
        // 10.0.6.0/25 is inside 10.0.6.0/24.
        assert_eq!(
            ctx.implies(&fv(Field::DstIp, Value::prefix(10, 0, 6, 0, 24))),
            Some(true)
        );
        // Disjoint prefix.
        assert_eq!(
            ctx.implies(&fv(Field::DstIp, Value::prefix(10, 0, 7, 0, 24))),
            Some(false)
        );
        // A narrower sub-prefix cannot be decided.
        assert_eq!(
            ctx.implies(&fv(Field::DstIp, Value::prefix(10, 0, 6, 0, 26))),
            None
        );
        // A specific address inside the known prefix cannot be decided.
        assert_eq!(ctx.implies(&fv(Field::DstIp, Value::ip(10, 0, 6, 3))), None);
    }

    #[test]
    fn negative_prefix_fact_excludes_contained_addresses() {
        let ctx = Context::new().with(fv(Field::DstIp, Value::prefix(10, 0, 6, 0, 24)), false);
        assert_eq!(
            ctx.implies(&fv(Field::DstIp, Value::ip(10, 0, 6, 3))),
            Some(false)
        );
        assert_eq!(ctx.implies(&fv(Field::DstIp, Value::ip(10, 0, 7, 3))), None);
        // Sub-prefix is also excluded.
        assert_eq!(
            ctx.implies(&fv(Field::DstIp, Value::prefix(10, 0, 6, 128, 25))),
            Some(false)
        );
    }

    #[test]
    fn field_field_implication() {
        let same = Test::FieldField(Field::SrcIp, Field::SrcIp);
        assert_eq!(Context::new().implies(&same), Some(true));
        let ff = Test::FieldField(Field::SrcIp, Field::DstIp);
        let sym = Test::FieldField(Field::DstIp, Field::SrcIp);
        let ctx = Context::new().with(ff.clone(), true);
        assert_eq!(ctx.implies(&sym), Some(true));
        // Known constant values decide field-field tests.
        let ctx = Context::new()
            .with(fv(Field::SrcIp, Value::ip(1, 1, 1, 1)), true)
            .with(fv(Field::DstIp, Value::ip(1, 1, 1, 1)), true);
        assert_eq!(ctx.implies(&ff), Some(true));
        let ctx = Context::new()
            .with(fv(Field::SrcIp, Value::ip(1, 1, 1, 1)), true)
            .with(fv(Field::DstIp, Value::ip(2, 2, 2, 2)), true);
        assert_eq!(ctx.implies(&ff), Some(false));
    }

    #[test]
    fn definite_value_ignores_prefixes() {
        let ctx = Context::new()
            .with(fv(Field::DstIp, Value::prefix(10, 0, 6, 0, 24)), true)
            .with(fv(Field::SrcPort, Value::Int(53)), true);
        assert_eq!(ctx.definite_value(&Field::DstIp), None);
        assert_eq!(ctx.definite_value(&Field::SrcPort), Some(Value::Int(53)));
        assert!(!ctx.is_empty());
        assert_eq!(ctx.len(), 2);
    }
}
