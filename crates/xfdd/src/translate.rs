//! Translation from SNAP policies to xFDDs (Figure 6's `to-xfdd`), building
//! into a hash-consed [`Pool`].

use crate::action::{Action, Leaf};
use crate::deps::StateDependencies;
use crate::diagram::Xfdd;
use crate::error::CompileError;
use crate::pool::{NodeId, Pool};
use crate::test::Test;
use snap_lang::{Policy, Pred};

/// Translate a policy into the pool and reject programs whose diagram
/// contains a leaf with parallel writes to the same state variable (a race).
pub fn to_xfdd(policy: &Policy, pool: &mut Pool) -> Result<NodeId, CompileError> {
    let d = build_policy(policy, pool)?;
    if let Some(var) = pool.find_race(d) {
        return Err(CompileError::StateRace { var });
    }
    Ok(d)
}

/// Translate a predicate to a (pass/drop) diagram in the pool.
pub fn pred_to_xfdd(pred: &Pred, pool: &mut Pool) -> Result<NodeId, CompileError> {
    build_pred(pred, pool)
}

/// Convenience entry point: analyze state dependencies, build a fresh pool
/// under the derived variable order, translate the policy and freeze the
/// result into a shareable [`Xfdd`].
pub fn compile(policy: &Policy) -> Result<Xfdd, CompileError> {
    let deps = StateDependencies::analyze(policy);
    let mut pool = Pool::new(deps.var_order());
    let root = to_xfdd(policy, &mut pool)?;
    Ok(Xfdd::new(pool, root))
}

fn build_policy(policy: &Policy, pool: &mut Pool) -> Result<NodeId, CompileError> {
    match policy {
        Policy::Filter(x) => build_pred(x, pool),
        Policy::Modify(f, v) => Ok(pool.leaf(Leaf::single(Action::Modify(f.clone(), v.clone())))),
        Policy::StateSet { var, index, value } => Ok(pool.leaf(Leaf::single(Action::StateSet {
            var: var.clone(),
            index: index.clone(),
            value: value.clone(),
        }))),
        Policy::StateIncr { var, index } => Ok(pool.leaf(Leaf::single(Action::StateIncr {
            var: var.clone(),
            index: index.clone(),
        }))),
        Policy::StateDecr { var, index } => Ok(pool.leaf(Leaf::single(Action::StateDecr {
            var: var.clone(),
            index: index.clone(),
        }))),
        Policy::Par(p, q) => {
            let dp = build_policy(p, pool)?;
            let dq = build_policy(q, pool)?;
            Ok(pool.union(dp, dq))
        }
        Policy::Seq(p, q) => {
            let dp = build_policy(p, pool)?;
            let dq = build_policy(q, pool)?;
            pool.seq(dp, dq)
        }
        Policy::If(a, p, q) => {
            let da = build_pred(a, pool)?;
            let dp = build_policy(p, pool)?;
            let dq = build_policy(q, pool)?;
            let then_side = pool.seq(da, dp)?;
            let not_a = pool.negate(da);
            let else_side = pool.seq(not_a, dq)?;
            Ok(pool.union(then_side, else_side))
        }
        Policy::Atomic(p) => build_policy(p, pool),
    }
}

fn build_pred(pred: &Pred, pool: &mut Pool) -> Result<NodeId, CompileError> {
    match pred {
        Pred::Id => Ok(pool.id()),
        Pred::Drop => Ok(pool.drop()),
        Pred::Test(f, v) => {
            let id = pool.id();
            let drop = pool.drop();
            Ok(pool.branch(Test::FieldValue(f.clone(), v.clone()), id, drop))
        }
        Pred::StateTest { var, index, value } => {
            let id = pool.id();
            let drop = pool.drop();
            Ok(pool.branch(
                Test::State {
                    var: var.clone(),
                    index: index.clone(),
                    value: value.clone(),
                },
                id,
                drop,
            ))
        }
        Pred::Not(x) => {
            let dx = build_pred(x, pool)?;
            Ok(pool.negate(dx))
        }
        Pred::Or(x, y) => {
            let dx = build_pred(x, pool)?;
            let dy = build_pred(y, pool)?;
            Ok(pool.union(dx, dy))
        }
        Pred::And(x, y) => {
            let dx = build_pred(x, pool)?;
            let dy = build_pred(y, pool)?;
            pool.seq(dx, dy)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test::VarOrder;
    use snap_lang::builder::*;
    use snap_lang::eval::eval;
    use snap_lang::{Field, Packet, StateVar, Store, Value};

    fn sv(s: &str) -> StateVar {
        StateVar::new(s)
    }

    #[test]
    fn translate_primitives() {
        let mut p = Pool::new(VarOrder::empty());
        assert_eq!(to_xfdd(&id(), &mut p).unwrap(), p.id());
        assert_eq!(to_xfdd(&drop(), &mut p).unwrap(), p.drop());
        let m = to_xfdd(&modify(Field::OutPort, Value::Int(3)), &mut p).unwrap();
        assert_eq!(p.num_tests(m), 0);
        assert!(matches!(p.node(m), crate::pool::Node::Leaf(_)));
    }

    #[test]
    fn translate_conjunction_and_disjunction() {
        let policy = filter(test(Field::SrcPort, Value::Int(53)).and(test_prefix(
            Field::DstIp,
            10,
            0,
            6,
            0,
            24,
        )));
        let d = compile(&policy).unwrap();
        assert!(d.is_well_formed());
        let store = Store::new();
        let hit = Packet::new()
            .with(Field::SrcPort, 53)
            .with(Field::DstIp, Value::ip(10, 0, 6, 1));
        let miss = Packet::new()
            .with(Field::SrcPort, 53)
            .with(Field::DstIp, Value::ip(10, 0, 7, 1));
        assert_eq!(d.evaluate(&hit, &store).unwrap().0.len(), 1);
        assert!(d.evaluate(&miss, &store).unwrap().0.is_empty());
    }

    #[test]
    fn translate_conditional_matches_eval() {
        let policy = ite(
            test(Field::SrcPort, Value::Int(53)),
            state_incr("dns", vec![field(Field::DstIp)]),
            state_incr("other", vec![field(Field::DstIp)]),
        );
        let d = compile(&policy).unwrap();
        let store = Store::new();
        for srcport in [53i64, 80] {
            let pkt = Packet::new()
                .with(Field::SrcPort, srcport)
                .with(Field::DstIp, Value::ip(10, 0, 0, 1));
            let (pkts_d, store_d) = d.evaluate(&pkt, &store).unwrap();
            let r = eval(&policy, &store, &pkt).unwrap();
            assert_eq!(pkts_d, r.packets);
            assert_eq!(store_d, r.store);
        }
    }

    #[test]
    fn race_condition_is_rejected() {
        // Parallel writes to the same variable reach the same leaf.
        let p = state_set("s", vec![int(0)], int(1)).par(state_set("s", vec![int(0)], int(2)));
        let err = compile(&p).unwrap_err();
        assert!(matches!(err, CompileError::StateRace { var } if var == sv("s")));
        // Guarded by disjoint conditions there is no shared leaf, hence no
        // race.
        let guarded = ite(
            test(Field::SrcPort, Value::Int(1)),
            state_set("s", vec![int(0)], int(1)),
            id(),
        )
        .par(ite(
            test(Field::SrcPort, Value::Int(2)),
            state_set("s", vec![int(0)], int(2)),
            id(),
        ));
        assert!(compile(&guarded).is_ok());
    }

    #[test]
    fn figure_1_dns_tunnel_translates() {
        let threshold = 3;
        let detect = ite(
            test_prefix(Field::DstIp, 10, 0, 6, 0, 24).and(test(Field::SrcPort, Value::Int(53))),
            Policy::seq_all(vec![
                state_set(
                    "orphan",
                    vec![field(Field::DstIp), field(Field::DnsRdata)],
                    Value::Bool(true),
                ),
                state_incr("susp-client", vec![field(Field::DstIp)]),
                ite(
                    state_test("susp-client", vec![field(Field::DstIp)], int(threshold)),
                    state_set("blacklist", vec![field(Field::DstIp)], Value::Bool(true)),
                    id(),
                ),
            ]),
            ite(
                test_prefix(Field::SrcIp, 10, 0, 6, 0, 24).and(state_truthy(
                    "orphan",
                    vec![field(Field::SrcIp), field(Field::DstIp)],
                )),
                state_set(
                    "orphan",
                    vec![field(Field::SrcIp), field(Field::DstIp)],
                    Value::Bool(false),
                )
                .seq(state_decr("susp-client", vec![field(Field::SrcIp)])),
                id(),
            ),
        );
        let order = VarOrder::new(vec![sv("orphan"), sv("susp-client"), sv("blacklist")]);
        let mut pool = Pool::new(order);
        let root = to_xfdd(&detect, &mut pool).unwrap();
        let d = Xfdd::new(pool, root);
        assert!(d.is_well_formed());
        let vars = d.state_vars();
        assert_eq!(vars.len(), 3);
        // Hash-consing shares subdiagrams: the arena stores strictly fewer
        // nodes than the unshared tree would.
        assert!(
            (d.size() as u64) < d.tree_size(),
            "expected sharing: {} arena nodes vs {} tree nodes",
            d.size(),
            d.tree_size()
        );

        // Behavioural spot-check against eval on a short trace.
        let client = Value::ip(10, 0, 6, 9);
        let dns = Packet::new()
            .with(Field::SrcIp, Value::ip(8, 8, 8, 8))
            .with(Field::DstIp, client.clone())
            .with(Field::SrcPort, 53)
            .with(Field::DnsRdata, Value::ip(5, 5, 5, 5));
        let mut store_e = Store::new();
        let mut store_d = Store::new();
        for _ in 0..4 {
            let r = eval(&detect, &store_e, &dns).unwrap();
            store_e = r.store;
            let (pk, sd) = d.evaluate(&dns, &store_d).unwrap();
            store_d = sd;
            assert_eq!(pk, r.packets);
        }
        assert_eq!(store_e, store_d);
        assert_eq!(store_e.get(&sv("blacklist"), &[client]), Value::Bool(true));
    }

    #[test]
    fn honeypot_atomic_example_translates() {
        let p = ite(
            test_prefix(Field::DstIp, 10, 0, 3, 0, 25),
            atomic(
                state_set("hon-ip", vec![field(Field::InPort)], field(Field::SrcIp)).seq(
                    state_set(
                        "hon-dstport",
                        vec![field(Field::InPort)],
                        field(Field::DstPort),
                    ),
                ),
            ),
            id(),
        );
        let d = compile(&p).unwrap();
        assert!(d.is_well_formed());
        let pkt = Packet::new()
            .with(Field::SrcIp, Value::ip(1, 2, 3, 4))
            .with(Field::DstIp, Value::ip(10, 0, 3, 7))
            .with(Field::DstPort, 8080)
            .with(Field::InPort, 1);
        let (pkts, store) = d.evaluate(&pkt, &Store::new()).unwrap();
        assert_eq!(pkts.len(), 1);
        assert_eq!(
            store.get(&sv("hon-ip"), &[Value::Int(1)]),
            Value::ip(1, 2, 3, 4)
        );
        assert_eq!(
            store.get(&sv("hon-dstport"), &[Value::Int(1)]),
            Value::Int(8080)
        );
    }

    #[test]
    fn monitoring_parallel_composition_matches_eval() {
        // (DNS-filtering + count[inport]++) ; outport <- 6
        let p = filter(test(Field::SrcPort, Value::Int(53)))
            .par(state_incr("count", vec![field(Field::InPort)]))
            .seq(modify(Field::OutPort, Value::Int(6)));
        let d = compile(&p).unwrap();
        let store = Store::new();
        for srcport in [53i64, 80] {
            let pkt = Packet::new()
                .with(Field::SrcPort, srcport)
                .with(Field::InPort, 2);
            let r = eval(&p, &store, &pkt).unwrap();
            let (pkts, st) = d.evaluate(&pkt, &store).unwrap();
            assert_eq!(pkts, r.packets);
            assert_eq!(st, r.store);
        }
    }

    #[test]
    fn negation_of_state_test() {
        let p = ite(
            state_truthy("blacklist", vec![field(Field::SrcIp)]).not(),
            id(),
            drop(),
        );
        let d = compile(&p).unwrap();
        let pkt = Packet::new().with(Field::SrcIp, Value::ip(9, 9, 9, 9));
        assert_eq!(d.evaluate(&pkt, &Store::new()).unwrap().0.len(), 1);
        let mut bad = Store::new();
        bad.set(
            &sv("blacklist"),
            vec![Value::ip(9, 9, 9, 9)],
            Value::Bool(true),
        );
        assert!(d.evaluate(&pkt, &bad).unwrap().0.is_empty());
    }
}
