//! Translation from SNAP policies to xFDDs (Figure 6's `to-xfdd`).

use crate::action::{Action, Leaf};
use crate::compose::{negate, seq, union};
use crate::diagram::Xfdd;
use crate::error::CompileError;
use crate::test::{Test, VarOrder};
use snap_lang::{Policy, Pred};

/// Translate a policy to an xFDD and reject programs whose diagram contains a
/// leaf with parallel writes to the same state variable (a race).
pub fn to_xfdd(policy: &Policy, order: &VarOrder) -> Result<Xfdd, CompileError> {
    let d = build_policy(policy, order)?;
    if let Some(var) = d.find_race() {
        return Err(CompileError::StateRace { var });
    }
    Ok(d)
}

/// Translate a predicate to a (pass/drop) xFDD.
pub fn pred_to_xfdd(pred: &Pred, order: &VarOrder) -> Result<Xfdd, CompileError> {
    build_pred(pred, order)
}

fn build_policy(policy: &Policy, order: &VarOrder) -> Result<Xfdd, CompileError> {
    match policy {
        Policy::Filter(x) => build_pred(x, order),
        Policy::Modify(f, v) => Ok(Xfdd::Leaf(Leaf::single(Action::Modify(
            f.clone(),
            v.clone(),
        )))),
        Policy::StateSet { var, index, value } => Ok(Xfdd::Leaf(Leaf::single(Action::StateSet {
            var: var.clone(),
            index: index.clone(),
            value: value.clone(),
        }))),
        Policy::StateIncr { var, index } => Ok(Xfdd::Leaf(Leaf::single(Action::StateIncr {
            var: var.clone(),
            index: index.clone(),
        }))),
        Policy::StateDecr { var, index } => Ok(Xfdd::Leaf(Leaf::single(Action::StateDecr {
            var: var.clone(),
            index: index.clone(),
        }))),
        Policy::Par(p, q) => {
            let dp = build_policy(p, order)?;
            let dq = build_policy(q, order)?;
            Ok(union(&dp, &dq, order))
        }
        Policy::Seq(p, q) => {
            let dp = build_policy(p, order)?;
            let dq = build_policy(q, order)?;
            seq(&dp, &dq, order)
        }
        Policy::If(a, p, q) => {
            let da = build_pred(a, order)?;
            let dp = build_policy(p, order)?;
            let dq = build_policy(q, order)?;
            let then_side = seq(&da, &dp, order)?;
            let else_side = seq(&negate(&da), &dq, order)?;
            Ok(union(&then_side, &else_side, order))
        }
        Policy::Atomic(p) => build_policy(p, order),
    }
}

fn build_pred(pred: &Pred, order: &VarOrder) -> Result<Xfdd, CompileError> {
    match pred {
        Pred::Id => Ok(Xfdd::id()),
        Pred::Drop => Ok(Xfdd::drop()),
        Pred::Test(f, v) => Ok(Xfdd::branch(
            Test::FieldValue(f.clone(), v.clone()),
            Xfdd::id(),
            Xfdd::drop(),
        )),
        Pred::StateTest { var, index, value } => Ok(Xfdd::branch(
            Test::State {
                var: var.clone(),
                index: index.clone(),
                value: value.clone(),
            },
            Xfdd::id(),
            Xfdd::drop(),
        )),
        Pred::Not(x) => Ok(negate(&build_pred(x, order)?)),
        Pred::Or(x, y) => {
            let dx = build_pred(x, order)?;
            let dy = build_pred(y, order)?;
            Ok(union(&dx, &dy, order))
        }
        Pred::And(x, y) => {
            let dx = build_pred(x, order)?;
            let dy = build_pred(y, order)?;
            seq(&dx, &dy, order)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_lang::builder::*;
    use snap_lang::eval::eval;
    use snap_lang::{Field, Packet, StateVar, Store, Value};

    fn order() -> VarOrder {
        VarOrder::empty()
    }

    fn sv(s: &str) -> StateVar {
        StateVar::new(s)
    }

    #[test]
    fn translate_primitives() {
        assert_eq!(to_xfdd(&id(), &order()).unwrap(), Xfdd::id());
        assert_eq!(to_xfdd(&drop(), &order()).unwrap(), Xfdd::drop());
        let m = to_xfdd(&modify(Field::OutPort, Value::Int(3)), &order()).unwrap();
        assert_eq!(m.num_tests(), 0);
        assert!(m.as_leaf().is_some());
    }

    #[test]
    fn translate_conjunction_and_disjunction() {
        let p = filter(
            test(Field::SrcPort, Value::Int(53)).and(test_prefix(Field::DstIp, 10, 0, 6, 0, 24)),
        );
        let d = to_xfdd(&p, &order()).unwrap();
        assert!(d.is_well_formed(&order()));
        let store = Store::new();
        let hit = Packet::new()
            .with(Field::SrcPort, 53)
            .with(Field::DstIp, Value::ip(10, 0, 6, 1));
        let miss = Packet::new()
            .with(Field::SrcPort, 53)
            .with(Field::DstIp, Value::ip(10, 0, 7, 1));
        assert_eq!(d.evaluate(&hit, &store).unwrap().0.len(), 1);
        assert!(d.evaluate(&miss, &store).unwrap().0.is_empty());
    }

    #[test]
    fn translate_conditional_matches_eval() {
        let p = ite(
            test(Field::SrcPort, Value::Int(53)),
            state_incr("dns", vec![field(Field::DstIp)]),
            state_incr("other", vec![field(Field::DstIp)]),
        );
        let d = to_xfdd(&p, &order()).unwrap();
        let store = Store::new();
        for srcport in [53i64, 80] {
            let pkt = Packet::new()
                .with(Field::SrcPort, srcport)
                .with(Field::DstIp, Value::ip(10, 0, 0, 1));
            let (pkts_d, store_d) = d.evaluate(&pkt, &store).unwrap();
            let r = eval(&p, &store, &pkt).unwrap();
            assert_eq!(pkts_d, r.packets);
            assert_eq!(store_d, r.store);
        }
    }

    #[test]
    fn race_condition_is_rejected() {
        // Parallel writes to the same variable reach the same leaf.
        let p = state_set("s", vec![int(0)], int(1)).par(state_set("s", vec![int(0)], int(2)));
        let err = to_xfdd(&p, &order()).unwrap_err();
        assert!(matches!(err, CompileError::StateRace { var } if var == sv("s")));
        // Guarded by disjoint conditions there is no shared leaf, hence no race.
        let guarded = ite(
            test(Field::SrcPort, Value::Int(1)),
            state_set("s", vec![int(0)], int(1)),
            id(),
        )
        .par(ite(
            test(Field::SrcPort, Value::Int(2)),
            state_set("s", vec![int(0)], int(2)),
            id(),
        ));
        assert!(to_xfdd(&guarded, &order()).is_ok());
    }

    #[test]
    fn figure_1_dns_tunnel_translates() {
        let threshold = 3;
        let detect = ite(
            test_prefix(Field::DstIp, 10, 0, 6, 0, 24).and(test(Field::SrcPort, Value::Int(53))),
            Policy::seq_all(vec![
                state_set(
                    "orphan",
                    vec![field(Field::DstIp), field(Field::DnsRdata)],
                    Value::Bool(true),
                ),
                state_incr("susp-client", vec![field(Field::DstIp)]),
                ite(
                    state_test("susp-client", vec![field(Field::DstIp)], int(threshold)),
                    state_set("blacklist", vec![field(Field::DstIp)], Value::Bool(true)),
                    id(),
                ),
            ]),
            ite(
                test_prefix(Field::SrcIp, 10, 0, 6, 0, 24).and(state_truthy(
                    "orphan",
                    vec![field(Field::SrcIp), field(Field::DstIp)],
                )),
                state_set(
                    "orphan",
                    vec![field(Field::SrcIp), field(Field::DstIp)],
                    Value::Bool(false),
                )
                .seq(state_decr("susp-client", vec![field(Field::SrcIp)])),
                id(),
            ),
        );
        let order = VarOrder::new(vec![sv("orphan"), sv("susp-client"), sv("blacklist")]);
        let d = to_xfdd(&detect, &order).unwrap();
        assert!(d.is_well_formed(&order));
        let vars = d.state_vars();
        assert_eq!(vars.len(), 3);

        // Behavioural spot-check against eval on a short trace.
        let client = Value::ip(10, 0, 6, 9);
        let dns = Packet::new()
            .with(Field::SrcIp, Value::ip(8, 8, 8, 8))
            .with(Field::DstIp, client.clone())
            .with(Field::SrcPort, 53)
            .with(Field::DnsRdata, Value::ip(5, 5, 5, 5));
        let mut store_e = Store::new();
        let mut store_d = Store::new();
        for _ in 0..4 {
            let r = eval(&detect, &store_e, &dns).unwrap();
            store_e = r.store;
            let (pk, sd) = d.evaluate(&dns, &store_d).unwrap();
            store_d = sd;
            assert_eq!(pk, r.packets);
        }
        assert_eq!(store_e, store_d);
        assert_eq!(store_e.get(&sv("blacklist"), &[client]), Value::Bool(true));
    }

    #[test]
    fn honeypot_atomic_example_translates() {
        let p = ite(
            test_prefix(Field::DstIp, 10, 0, 3, 0, 25),
            atomic(
                state_set("hon-ip", vec![field(Field::InPort)], field(Field::SrcIp)).seq(state_set(
                    "hon-dstport",
                    vec![field(Field::InPort)],
                    field(Field::DstPort),
                )),
            ),
            id(),
        );
        let d = to_xfdd(&p, &order()).unwrap();
        assert!(d.is_well_formed(&order()));
        let pkt = Packet::new()
            .with(Field::SrcIp, Value::ip(1, 2, 3, 4))
            .with(Field::DstIp, Value::ip(10, 0, 3, 7))
            .with(Field::DstPort, 8080)
            .with(Field::InPort, 1);
        let (pkts, store) = d.evaluate(&pkt, &Store::new()).unwrap();
        assert_eq!(pkts.len(), 1);
        assert_eq!(
            store.get(&sv("hon-ip"), &[Value::Int(1)]),
            Value::ip(1, 2, 3, 4)
        );
        assert_eq!(
            store.get(&sv("hon-dstport"), &[Value::Int(1)]),
            Value::Int(8080)
        );
    }

    #[test]
    fn monitoring_parallel_composition_matches_eval() {
        // (DNS-filtering + count[inport]++) ; outport <- 6
        let p = filter(test(Field::SrcPort, Value::Int(53)))
            .par(state_incr("count", vec![field(Field::InPort)]))
            .seq(modify(Field::OutPort, Value::Int(6)));
        let d = to_xfdd(&p, &order()).unwrap();
        let store = Store::new();
        for srcport in [53i64, 80] {
            let pkt = Packet::new()
                .with(Field::SrcPort, srcport)
                .with(Field::InPort, 2);
            let r = eval(&p, &store, &pkt).unwrap();
            let (pkts, st) = d.evaluate(&pkt, &store).unwrap();
            assert_eq!(pkts, r.packets);
            assert_eq!(st, r.store);
        }
    }

    #[test]
    fn negation_of_state_test() {
        let p = ite(
            state_truthy("blacklist", vec![field(Field::SrcIp)]).not(),
            id(),
            drop(),
        );
        let d = to_xfdd(&p, &order()).unwrap();
        let pkt = Packet::new().with(Field::SrcIp, Value::ip(9, 9, 9, 9));
        assert_eq!(d.evaluate(&pkt, &Store::new()).unwrap().0.len(), 1);
        let mut bad = Store::new();
        bad.set(
            &sv("blacklist"),
            vec![Value::ip(9, 9, 9, 9)],
            Value::Bool(true),
        );
        assert!(d.evaluate(&pkt, &bad).unwrap().0.is_empty());
    }
}
