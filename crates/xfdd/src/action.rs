//! xFDD leaf actions and action sequences.
//!
//! Leaves of an xFDD are *sets of action sequences* (Figure 6). A sequence
//! may modify packet fields and state variables, and may end by dropping the
//! packet — crucially, state updates that precede a `drop` still take effect,
//! matching the paper's semantics where `drop` is just another action at the
//! end of a sequence. The identity is the empty, non-dropping sequence; a
//! leaf whose set is empty drops every packet with no side effects.

use serde::{Deserialize, Serialize};
use snap_lang::eval::{eval_expr, eval_index};
use snap_lang::{EvalError, Expr, Field, Packet, StateVar, Store, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A single action (Figure 6's `a`, minus `id`/`drop` which are encoded by
/// the sequence / leaf structure).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Action {
    /// `f ← v`
    Modify(Field, Value),
    /// `s[⇀e] ← e`
    StateSet {
        /// Variable written.
        var: StateVar,
        /// Index expressions.
        index: Vec<Expr>,
        /// Stored value expression.
        value: Expr,
    },
    /// `s[⇀e]++`
    StateIncr {
        /// Variable written.
        var: StateVar,
        /// Index expressions.
        index: Vec<Expr>,
    },
    /// `s[⇀e]--`
    StateDecr {
        /// Variable written.
        var: StateVar,
        /// Index expressions.
        index: Vec<Expr>,
    },
}

impl Action {
    /// The state variable written by this action, if any.
    pub fn written_var(&self) -> Option<&StateVar> {
        match self {
            Action::Modify(_, _) => None,
            Action::StateSet { var, .. }
            | Action::StateIncr { var, .. }
            | Action::StateDecr { var, .. } => Some(var),
        }
    }
}

impl fmt::Debug for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Modify(field, v) => write!(f, "{field} <- {v}"),
            Action::StateSet { var, index, value } => {
                write!(f, "{var}")?;
                for e in index {
                    write!(f, "[{e:?}]")?;
                }
                write!(f, " <- {value:?}")
            }
            Action::StateIncr { var, index } => {
                write!(f, "{var}")?;
                for e in index {
                    write!(f, "[{e:?}]")?;
                }
                write!(f, "++")
            }
            Action::StateDecr { var, index } => {
                write!(f, "{var}")?;
                for e in index {
                    write!(f, "[{e:?}]")?;
                }
                write!(f, "--")
            }
        }
    }
}

/// A sequence of actions, optionally ending in a `drop`.
///
/// When `drops` is set, the sequence performs its state/packet updates but
/// emits no output packet.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActionSeq {
    /// The actions, in execution order.
    pub actions: Vec<Action>,
    /// Whether the packet is dropped after the actions run.
    pub drops: bool,
}

impl ActionSeq {
    /// The identity sequence.
    pub fn identity() -> Self {
        ActionSeq {
            actions: Vec::new(),
            drops: false,
        }
    }

    /// A non-dropping sequence holding a single action.
    pub fn single(a: Action) -> Self {
        ActionSeq {
            actions: vec![a],
            drops: false,
        }
    }

    /// A non-dropping sequence from a list of actions.
    pub fn from_actions(actions: Vec<Action>) -> Self {
        ActionSeq {
            actions,
            drops: false,
        }
    }

    /// This sequence, but ending in a drop.
    pub fn with_drop(mut self) -> Self {
        self.drops = true;
        self
    }

    /// Is this the identity?
    pub fn is_identity(&self) -> bool {
        self.actions.is_empty() && !self.drops
    }

    /// Does this sequence drop the packet without any side effect?
    pub fn is_pure_drop(&self) -> bool {
        self.actions.is_empty() && self.drops
    }

    /// Sequence this followed by `other` (`as1 ; as2`). If this sequence
    /// already drops the packet, `other` never runs.
    pub fn concat(&self, other: &ActionSeq) -> ActionSeq {
        if self.drops {
            return self.clone();
        }
        let mut v = self.actions.clone();
        v.extend(other.actions.iter().cloned());
        ActionSeq {
            actions: v,
            drops: other.drops,
        }
    }

    /// State variables written anywhere in the sequence.
    pub fn written_vars(&self) -> BTreeSet<StateVar> {
        self.actions
            .iter()
            .filter_map(|a| a.written_var().cloned())
            .collect()
    }

    /// Packet fields modified anywhere in the sequence.
    pub fn modified_fields(&self) -> BTreeSet<Field> {
        self.actions
            .iter()
            .filter_map(|a| match a {
                Action::Modify(f, _) => Some(f.clone()),
                _ => None,
            })
            .collect()
    }

    /// Execute the sequence on a packet and store. Returns the transformed
    /// packet (`None` when the sequence drops it) and the updated store.
    pub fn apply(&self, pkt: &Packet, store: &Store) -> Result<(Option<Packet>, Store), EvalError> {
        let mut pkt = pkt.clone();
        let mut store = store.clone();
        for action in &self.actions {
            match action {
                Action::Modify(f, v) => pkt.set(f.clone(), v.clone()),
                Action::StateSet { var, index, value } => {
                    let idx = eval_index(index, &pkt)?;
                    let val = eval_expr(value, &pkt)?;
                    store.set(var, idx, val);
                }
                Action::StateIncr { var, index } | Action::StateDecr { var, index } => {
                    let delta = if matches!(action, Action::StateIncr { .. }) {
                        1
                    } else {
                        -1
                    };
                    let idx = eval_index(index, &pkt)?;
                    let current = store.get(var, &idx);
                    let next = current.as_int().ok_or(EvalError::NotAnInteger {
                        var: var.clone(),
                        value: current.clone(),
                    })?;
                    store.set(var, idx, Value::Int(next + delta));
                }
            }
        }
        let out = if self.drops { None } else { Some(pkt) };
        Ok((out, store))
    }
}

impl fmt::Debug for ActionSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_identity() {
            return write!(f, "id");
        }
        if self.is_pure_drop() {
            return write!(f, "drop");
        }
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{a:?}")?;
        }
        if self.drops {
            write!(f, "; drop")?;
        }
        Ok(())
    }
}

/// A leaf: a set of action sequences. The empty set drops every packet with
/// no side effect; the set containing just the identity sequence is `id`.
///
/// Pure-drop sequences (no actions, `drops` set) are normalized away on
/// insertion because they contribute neither packets nor state changes.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Leaf(pub BTreeSet<ActionSeq>);

impl Leaf {
    /// The `drop` leaf (no behaviour at all).
    pub fn drop() -> Self {
        Leaf(BTreeSet::new())
    }

    /// The `id` leaf.
    pub fn id() -> Self {
        let mut s = BTreeSet::new();
        s.insert(ActionSeq::identity());
        Leaf(s)
    }

    /// A leaf with a single action.
    pub fn single(a: Action) -> Self {
        Leaf::from_seq(ActionSeq::single(a))
    }

    /// A leaf holding one action sequence (normalized).
    pub fn from_seq(seq: ActionSeq) -> Self {
        let mut l = Leaf::drop();
        l.insert(seq);
        l
    }

    /// A leaf holding the given sequences (normalized).
    pub fn from_seqs(seqs: impl IntoIterator<Item = ActionSeq>) -> Self {
        let mut l = Leaf::drop();
        for s in seqs {
            l.insert(s);
        }
        l
    }

    /// Insert a sequence, dropping side-effect-free `drop` sequences.
    pub fn insert(&mut self, seq: ActionSeq) {
        if !seq.is_pure_drop() {
            self.0.insert(seq);
        }
    }

    /// Does this leaf have no behaviour at all (no packets, no state change)?
    pub fn is_drop(&self) -> bool {
        self.0.is_empty()
    }

    /// Does this leaf emit no packet (it may still update state)?
    pub fn passes_nothing(&self) -> bool {
        self.0.iter().all(|s| s.drops)
    }

    /// Is this leaf exactly the identity?
    pub fn is_id(&self) -> bool {
        self.0.len() == 1 && self.0.iter().next().unwrap().is_identity()
    }

    /// Union of two leaves (the `⊕` base case).
    pub fn union(&self, other: &Leaf) -> Leaf {
        let mut s = self.0.clone();
        s.extend(other.0.iter().cloned());
        Leaf(s)
    }

    /// If two *different* sequences in this leaf write the same state
    /// variable, that variable is returned: the leaf encodes a parallel
    /// race and the program must be rejected (§4.2, end).
    pub fn parallel_race(&self) -> Option<StateVar> {
        let seqs: Vec<&ActionSeq> = self.0.iter().collect();
        for i in 0..seqs.len() {
            let wi = seqs[i].written_vars();
            for sj in seqs.iter().skip(i + 1) {
                let wj = sj.written_vars();
                if let Some(var) = wi.intersection(&wj).next() {
                    return Some(var.clone());
                }
            }
        }
        None
    }

    /// Apply the leaf to a packet and store: every action sequence runs on
    /// the same input store, packets are unioned and store changes merged
    /// (mirroring the semantics of parallel composition).
    pub fn apply(
        &self,
        pkt: &Packet,
        store: &Store,
    ) -> Result<(BTreeSet<Packet>, Store), EvalError> {
        let mut packets = BTreeSet::new();
        let mut stores = Vec::new();
        for seq in &self.0 {
            let (p, s) = seq.apply(pkt, store)?;
            if let Some(p) = p {
                packets.insert(p);
            }
            stores.push(s);
        }
        let merged = Store::merge(store, &stores);
        Ok((packets, merged))
    }

    /// State variables written by any sequence in the leaf.
    pub fn written_vars(&self) -> BTreeSet<StateVar> {
        self.0.iter().flat_map(|s| s.written_vars()).collect()
    }
}

impl fmt::Debug for Leaf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_drop() {
            return write!(f, "{{drop}}");
        }
        write!(f, "{{")?;
        for (i, seq) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{seq:?}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_lang::builder::field;

    fn sv(s: &str) -> StateVar {
        StateVar::new(s)
    }

    #[test]
    fn identity_and_drop_leaves() {
        assert!(Leaf::drop().is_drop());
        assert!(Leaf::id().is_id());
        assert!(!Leaf::id().is_drop());
        assert!(!Leaf::single(Action::Modify(Field::OutPort, Value::Int(1))).is_id());
        assert!(Leaf::drop().passes_nothing());
        assert!(!Leaf::id().passes_nothing());
    }

    #[test]
    fn pure_drop_sequences_are_normalized_away() {
        let leaf = Leaf::from_seqs(vec![
            ActionSeq::identity().with_drop(),
            ActionSeq::identity(),
        ]);
        assert!(leaf.is_id());
        let only_drop = Leaf::from_seq(ActionSeq::identity().with_drop());
        assert!(only_drop.is_drop());
    }

    #[test]
    fn dropping_sequence_with_actions_is_kept() {
        let seq = ActionSeq::single(Action::StateIncr {
            var: sv("c"),
            index: vec![],
        })
        .with_drop();
        let leaf = Leaf::from_seq(seq);
        assert!(!leaf.is_drop());
        assert!(leaf.passes_nothing());
        let (pkts, store) = leaf.apply(&Packet::new(), &Store::new()).unwrap();
        assert!(pkts.is_empty());
        assert_eq!(store.get(&sv("c"), &[]), Value::Int(1));
    }

    #[test]
    fn union_of_drop_is_identity_of_union() {
        let id = Leaf::id();
        let drop = Leaf::drop();
        assert_eq!(id.union(&drop), id);
        assert_eq!(drop.union(&drop), drop);
    }

    #[test]
    fn concat_sequences() {
        let a = ActionSeq::single(Action::Modify(Field::OutPort, Value::Int(1)));
        let b = ActionSeq::single(Action::StateIncr {
            var: sv("c"),
            index: vec![field(Field::InPort)],
        });
        let ab = a.concat(&b);
        assert_eq!(ab.actions.len(), 2);
        assert_eq!(ab.modified_fields().len(), 1);
        assert_eq!(ab.written_vars().len(), 1);
        assert!(!ab.drops);
    }

    #[test]
    fn concat_after_drop_discards_the_suffix() {
        let a = ActionSeq::single(Action::StateIncr {
            var: sv("c"),
            index: vec![],
        })
        .with_drop();
        let b = ActionSeq::single(Action::Modify(Field::OutPort, Value::Int(1)));
        let ab = a.concat(&b);
        assert_eq!(ab, a);
        // And a suffix that drops marks the whole sequence as dropping.
        let ba = b.concat(&a);
        assert!(ba.drops);
        assert_eq!(ba.actions.len(), 2);
    }

    #[test]
    fn apply_sequence_modifies_packet_and_store() {
        let seq = ActionSeq::from_actions(vec![
            Action::Modify(Field::OutPort, Value::Int(6)),
            Action::StateSet {
                var: sv("seen"),
                index: vec![field(Field::OutPort)],
                value: Expr::Value(Value::Bool(true)),
            },
        ]);
        let pkt = Packet::new().with(Field::InPort, 1);
        let (p, s) = seq.apply(&pkt, &Store::new()).unwrap();
        let p = p.expect("sequence does not drop");
        assert_eq!(p.get(&Field::OutPort), Some(&Value::Int(6)));
        // The state index saw the *modified* outport because actions run in order.
        assert_eq!(s.get(&sv("seen"), &[Value::Int(6)]), Value::Bool(true));
    }

    #[test]
    fn apply_increment_decrement() {
        let inc = ActionSeq::from_actions(vec![
            Action::StateIncr {
                var: sv("c"),
                index: vec![],
            },
            Action::StateIncr {
                var: sv("c"),
                index: vec![],
            },
            Action::StateDecr {
                var: sv("c"),
                index: vec![],
            },
        ]);
        let (_, s) = inc.apply(&Packet::new(), &Store::new()).unwrap();
        assert_eq!(s.get(&sv("c"), &[]), Value::Int(1));
    }

    #[test]
    fn apply_increment_of_bool_errors() {
        let mut store = Store::new();
        store.set(&sv("flag"), vec![], Value::Bool(true));
        let inc = ActionSeq::single(Action::StateIncr {
            var: sv("flag"),
            index: vec![],
        });
        assert!(inc.apply(&Packet::new(), &store).is_err());
    }

    #[test]
    fn parallel_race_detection() {
        let leaf = Leaf::from_seqs(vec![
            ActionSeq::single(Action::StateSet {
                var: sv("s"),
                index: vec![],
                value: Expr::Value(Value::Int(1)),
            }),
            ActionSeq::single(Action::StateSet {
                var: sv("s"),
                index: vec![],
                value: Expr::Value(Value::Int(2)),
            }),
        ]);
        assert_eq!(leaf.parallel_race(), Some(sv("s")));

        let ok = Leaf::from_seqs(vec![
            ActionSeq::single(Action::StateSet {
                var: sv("s"),
                index: vec![],
                value: Expr::Value(Value::Int(1)),
            }),
            ActionSeq::single(Action::StateSet {
                var: sv("t"),
                index: vec![],
                value: Expr::Value(Value::Int(2)),
            }),
        ]);
        assert_eq!(ok.parallel_race(), None);
        // Two writes in the *same* sequence are not a race.
        let seq_writes = Leaf::single(Action::StateSet {
            var: sv("s"),
            index: vec![],
            value: Expr::Value(Value::Int(1)),
        });
        assert_eq!(seq_writes.parallel_race(), None);
    }

    #[test]
    fn leaf_apply_merges_parallel_results() {
        let leaf = Leaf::from_seqs(vec![
            ActionSeq::single(Action::Modify(Field::OutPort, Value::Int(1))),
            ActionSeq::single(Action::StateIncr {
                var: sv("c"),
                index: vec![],
            }),
        ]);
        let pkt = Packet::new().with(Field::InPort, 9);
        let (pkts, store) = leaf.apply(&pkt, &Store::new()).unwrap();
        assert_eq!(pkts.len(), 2);
        assert_eq!(store.get(&sv("c"), &[]), Value::Int(1));
    }
}
