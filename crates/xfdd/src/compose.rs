//! xFDD composition operators: union (`⊕`), negation (`⊖`), restriction
//! (`·|t`) and sequential composition (`⊙`), following Figures 7–8 and
//! Appendices B/E of the paper — implemented over the hash-consed [`Pool`]
//! with memoization.
//!
//! Because nodes are interned, structural equality is id equality, and each
//! operator keeps a memo table in the pool keyed on `(lhs, rhs)` (plus the
//! interned context for the union recursion, whose refinement step depends on
//! the facts accumulated along the composition path). Repeating a composition
//! — the common case when policies are built incrementally or recompiled — is
//! then a hash lookup instead of a diagram traversal.
//!
//! The delicate part is composing an *action sequence* with a *branch*: the
//! actions happen "before" the test, so the test must be re-expressed over
//! the original packet header and the pre-existing state. That is where the
//! field-field tests and the context machinery come in.

use crate::action::{Action, ActionSeq, Leaf};
use crate::context::Context;
use crate::error::CompileError;
use crate::pool::{CtxId, Node, NodeId, Pool};
use crate::test::Test;
use snap_lang::{Expr, Field, StateVar, Value};
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// A node, decomposed into owned parts for recursion while the pool is
/// mutably borrowed.
enum Shape {
    Leaf,
    Branch(Test, NodeId, NodeId),
}

impl Pool {
    fn shape(&self, n: NodeId) -> Shape {
        match self.node(n) {
            Node::Leaf(_) => Shape::Leaf,
            Node::Branch { test, tru, fls } => Shape::Branch(test.clone(), *tru, *fls),
        }
    }

    fn leaf_of(&self, n: NodeId) -> &Leaf {
        match self.node(n) {
            Node::Leaf(l) => l,
            Node::Branch { .. } => unreachable!("leaf_of called on a branch"),
        }
    }

    fn is_drop_leaf(&self, n: NodeId) -> bool {
        matches!(self.node(n), Node::Leaf(l) if l.is_drop())
    }

    // -----------------------------------------------------------------------
    // Union, negation, restriction
    // -----------------------------------------------------------------------

    /// `d1 ⊕ d2` — parallel composition of diagrams.
    pub fn union(&mut self, d1: NodeId, d2: NodeId) -> NodeId {
        let ctx = self.empty_ctx();
        self.union_ctx(d1, d2, ctx)
    }

    fn union_ctx(&mut self, d1: NodeId, d2: NodeId, ctx: CtxId) -> NodeId {
        let d1 = self.refine(d1, ctx);
        let d2 = self.refine(d2, ctx);
        if d1 == d2 {
            // Union is idempotent, and interning makes this check O(1).
            return d1;
        }
        // `{drop}` is the unit of `⊕`: return the other side untouched.
        // (Diagrams produced by this compiler are already path-refined, so
        // the recursion would rebuild the identical diagram node by node —
        // this matters because `seq` unions every leaf's result into a
        // `{drop}` accumulator on the compiler's hottest path.)
        if self.is_drop_leaf(d1) {
            return d2;
        }
        if self.is_drop_leaf(d2) {
            return d1;
        }
        // Union is commutative, so canonicalize the key order.
        let key = (d1.min(d2), d1.max(d2), ctx);
        if let Some(&r) = self.union_memo.get(&key) {
            return r;
        }
        let result = match (self.shape(d1), self.shape(d2)) {
            (Shape::Leaf, Shape::Leaf) => {
                let merged = self.leaf_of(d1).union(self.leaf_of(d2));
                self.leaf(merged)
            }
            (Shape::Branch(test, tru, fls), Shape::Leaf) => {
                let ct = self.ctx_with(ctx, test.clone(), true);
                let cf = self.ctx_with(ctx, test.clone(), false);
                let a = self.union_ctx(tru, d2, ct);
                let b = self.union_ctx(fls, d2, cf);
                self.branch(test, a, b)
            }
            (Shape::Leaf, Shape::Branch(test, tru, fls)) => {
                let ct = self.ctx_with(ctx, test.clone(), true);
                let cf = self.ctx_with(ctx, test.clone(), false);
                let a = self.union_ctx(d1, tru, ct);
                let b = self.union_ctx(d1, fls, cf);
                self.branch(test, a, b)
            }
            (Shape::Branch(t1, d11, d12), Shape::Branch(t2, d21, d22)) => {
                match t1.cmp_in(&t2, self.order()) {
                    Ordering::Equal => {
                        let ct = self.ctx_with(ctx, t1.clone(), true);
                        let cf = self.ctx_with(ctx, t1.clone(), false);
                        let a = self.union_ctx(d11, d21, ct);
                        let b = self.union_ctx(d12, d22, cf);
                        self.branch(t1, a, b)
                    }
                    Ordering::Less => {
                        let ct = self.ctx_with(ctx, t1.clone(), true);
                        let cf = self.ctx_with(ctx, t1.clone(), false);
                        let a = self.union_ctx(d11, d2, ct);
                        let b = self.union_ctx(d12, d2, cf);
                        self.branch(t1, a, b)
                    }
                    Ordering::Greater => {
                        let ct = self.ctx_with(ctx, t2.clone(), true);
                        let cf = self.ctx_with(ctx, t2.clone(), false);
                        let a = self.union_ctx(d1, d21, ct);
                        let b = self.union_ctx(d1, d22, cf);
                        self.branch(t2, a, b)
                    }
                }
            }
        };
        self.union_memo.insert(key, result);
        result
    }

    /// The paper's `refine`: strip redundant or contradicting tests from the
    /// top of a diagram given what the context already implies.
    fn refine(&self, d: NodeId, ctx: CtxId) -> NodeId {
        let mut cur = d;
        loop {
            match self.node(cur) {
                Node::Branch { test, tru, fls } => match self.ctx_implies(ctx, test) {
                    Some(true) => cur = *tru,
                    Some(false) => cur = *fls,
                    None => return cur,
                },
                Node::Leaf(_) => return cur,
            }
        }
    }

    /// `⊖d` — negation. Only meaningful for predicate diagrams (leaves `{id}`
    /// / `{drop}`); a leaf with real actions is treated as "passes" and
    /// therefore negates to `drop`.
    pub fn negate(&mut self, d: NodeId) -> NodeId {
        if let Some(&r) = self.negate_memo.get(&d) {
            return r;
        }
        let result = match self.shape(d) {
            Shape::Leaf => {
                if self.is_drop_leaf(d) {
                    self.id()
                } else {
                    self.drop()
                }
            }
            Shape::Branch(test, tru, fls) => {
                let a = self.negate(tru);
                let b = self.negate(fls);
                self.branch(test, a, b)
            }
        };
        self.negate_memo.insert(d, result);
        result
    }

    /// `d|t` (when `positive`) or `d|¬t` (otherwise): keep `d`'s behaviour
    /// only where the test has the given outcome; drop elsewhere.
    pub fn restrict(&mut self, d: NodeId, test: &Test, positive: bool) -> NodeId {
        let key = (d, test.clone(), positive);
        if let Some(&r) = self.restrict_memo.get(&key) {
            return r;
        }
        let result = match self.shape(d) {
            Shape::Leaf => {
                if self.is_drop_leaf(d) {
                    self.drop()
                } else if positive {
                    let drop = self.drop();
                    self.branch(test.clone(), d, drop)
                } else {
                    let drop = self.drop();
                    self.branch(test.clone(), drop, d)
                }
            }
            Shape::Branch(t1, tru, fls) => match t1.cmp_in(test, self.order()) {
                Ordering::Equal => {
                    let drop = self.drop();
                    if positive {
                        self.branch(t1, tru, drop)
                    } else {
                        self.branch(t1, drop, fls)
                    }
                }
                Ordering::Greater => {
                    // `test` comes first in the order: hoist it above `d`.
                    let drop = self.drop();
                    if positive {
                        self.branch(test.clone(), d, drop)
                    } else {
                        self.branch(test.clone(), drop, d)
                    }
                }
                Ordering::Less => {
                    let a = self.restrict(tru, test, positive);
                    let b = self.restrict(fls, test, positive);
                    self.branch(t1, a, b)
                }
            },
        };
        self.restrict_memo.insert(key, result);
        result
    }

    /// Build a semantically correct, well-formed `test ? dt : df` even when
    /// `dt` or `df` contain tests that precede `test` in the global order.
    pub fn make_branch(&mut self, test: Test, dt: NodeId, df: NodeId) -> NodeId {
        let a = self.restrict(dt, &test, true);
        let b = self.restrict(df, &test, false);
        self.union(a, b)
    }

    // -----------------------------------------------------------------------
    // Sequential composition
    // -----------------------------------------------------------------------

    /// `d1 ⊙ d2` — sequential composition of diagrams.
    pub fn seq(&mut self, d1: NodeId, d2: NodeId) -> Result<NodeId, CompileError> {
        if let Some(r) = self.seq_memo.get(&(d1, d2)) {
            return r.clone();
        }
        let result = self.seq_uncached(d1, d2);
        self.seq_memo.insert((d1, d2), result.clone());
        result
    }

    fn seq_uncached(&mut self, d1: NodeId, d2: NodeId) -> Result<NodeId, CompileError> {
        match self.shape(d1) {
            Shape::Leaf => {
                if self.is_drop_leaf(d1) {
                    return Ok(self.drop());
                }
                let seqs: Vec<ActionSeq> = self.leaf_of(d1).0.iter().cloned().collect();
                let mut acc = self.drop();
                let ctx = self.empty_ctx();
                for a in &seqs {
                    let part = self.seq_action(a, d2, ctx)?;
                    acc = self.union(acc, part);
                }
                Ok(acc)
            }
            Shape::Branch(test, tru, fls) => {
                let a = self.seq(tru, d2)?;
                let b = self.seq(fls, d2)?;
                Ok(self.make_branch(test, a, b))
            }
        }
    }

    /// Compose a single action sequence with a diagram (`as ⊙ d`), threading
    /// a context of decided tests — Appendix E's `seq(a, d, T)`.
    fn seq_action(
        &mut self,
        actions: &ActionSeq,
        d: NodeId,
        ctx: CtxId,
    ) -> Result<NodeId, CompileError> {
        // A sequence that already dropped the packet never reaches the rest
        // of the program, but its state updates still take effect.
        if actions.drops {
            return Ok(self.leaf(Leaf::from_seq(actions.clone())));
        }
        let (test, tru, fls) = match self.shape(d) {
            Shape::Leaf => {
                if self.is_drop_leaf(d) {
                    // `as ⊙ {drop}`: the actions run, then the packet drops.
                    return Ok(self.leaf(Leaf::from_seq(actions.clone().with_drop())));
                }
                let suffixes: Vec<ActionSeq> = self.leaf_of(d).0.iter().cloned().collect();
                let mut out = Leaf::drop();
                for suffix in &suffixes {
                    out.insert(actions.concat(suffix));
                }
                return Ok(self.leaf(out));
            }
            Shape::Branch(test, tru, fls) => (test, tru, fls),
        };

        let fmap = field_map(actions);
        match &test {
            Test::FieldValue(f, v) => {
                if let Some(assigned) = fmap.get(f) {
                    // The sequence overwrote the field: the test is decided.
                    return if v.matches(assigned) {
                        self.seq_action(actions, tru, ctx)
                    } else {
                        self.seq_action(actions, fls, ctx)
                    };
                }
                self.decide_or_branch(test.clone(), actions, tru, fls, ctx)
            }
            Test::FieldField(f, g) => {
                let rf = resolve_field(f, &fmap, self.ctx(ctx));
                let rg = resolve_field(g, &fmap, self.ctx(ctx));
                match (rf, rg) {
                    (Resolved::Val(a), Resolved::Val(b)) => {
                        if a == b {
                            self.seq_action(actions, tru, ctx)
                        } else {
                            self.seq_action(actions, fls, ctx)
                        }
                    }
                    (Resolved::Val(a), Resolved::Fld(g2)) => {
                        self.decide_or_branch(Test::FieldValue(g2, a), actions, tru, fls, ctx)
                    }
                    (Resolved::Fld(f2), Resolved::Val(b)) => {
                        self.decide_or_branch(Test::FieldValue(f2, b), actions, tru, fls, ctx)
                    }
                    (Resolved::Fld(f2), Resolved::Fld(g2)) => {
                        if f2 == g2 {
                            self.seq_action(actions, tru, ctx)
                        } else {
                            self.decide_or_branch(Test::FieldField(f2, g2), actions, tru, fls, ctx)
                        }
                    }
                }
            }
            Test::State { var, index, value } => {
                let (var, index, value) = (var.clone(), index.clone(), value.clone());
                self.seq_action_state(actions, d, tru, fls, &var, &index, &value, &fmap, ctx)
            }
        }
    }

    /// Check the context for the (already re-expressed) test; recurse into
    /// the decided branch or build a well-formed branch over it.
    fn decide_or_branch(
        &mut self,
        test: Test,
        actions: &ActionSeq,
        tru: NodeId,
        fls: NodeId,
        ctx: CtxId,
    ) -> Result<NodeId, CompileError> {
        match self.ctx_implies(ctx, &test) {
            Some(true) => self.seq_action(actions, tru, ctx),
            Some(false) => self.seq_action(actions, fls, ctx),
            None => {
                let ct = self.ctx_with(ctx, test.clone(), true);
                let cf = self.ctx_with(ctx, test.clone(), false);
                let dt = self.seq_action(actions, tru, ct)?;
                let df = self.seq_action(actions, fls, cf)?;
                Ok(self.make_branch(test, dt, df))
            }
        }
    }

    /// The hardest case: `as ⊙ (s[e1] = e2 ? d1 : d2)`.
    ///
    /// The writes to `s` inside `as` may determine the test: scanning from
    /// the latest write backwards, a write to the same entry with a known
    /// value decides the test (possibly shifted by intervening
    /// increments/decrements), and a write to a *possibly* equal entry forces
    /// a disambiguating field-field / field-value test to be inserted (the
    /// `(test ? d : d)` trick of Appendix E). If no write is relevant, the
    /// test reads pre-existing state and is emitted, re-expressed over the
    /// original packet header.
    #[allow(clippy::too_many_arguments)]
    fn seq_action_state(
        &mut self,
        actions: &ActionSeq,
        whole: NodeId,
        tru: NodeId,
        fls: NodeId,
        var: &StateVar,
        index: &[Expr],
        value: &Expr,
        fmap: &BTreeMap<Field, Value>,
        ctx: CtxId,
    ) -> Result<NodeId, CompileError> {
        // Test expressions re-expressed over the original header: fields that
        // the sequence modified become the constants it assigned.
        let t_idx: Vec<Expr> = index
            .iter()
            .map(|e| resolve_expr(e, fmap, self.ctx(ctx)))
            .collect();
        let t_val: Expr = resolve_expr(value, fmap, self.ctx(ctx));

        // Writes to `var` inside the sequence, each re-expressed over the
        // original header using only the field modifications that *precede*
        // it.
        let writes = collect_writes(actions, var, self.ctx(ctx));

        let mut offset: i64 = 0;
        for w in writes.iter().rev() {
            match exprs_equal(&t_idx, &w.index, self.ctx(ctx)) {
                EqResult::Neq => continue,
                EqResult::Unknown(test) => {
                    // Emit the disambiguating test (it is expressed over the
                    // *original* header) and redo this node on both sides
                    // with the outcome recorded in the context, which then
                    // decides the equality.
                    return self.disambiguate(test, actions, whole, ctx);
                }
                EqResult::Eq => match &w.kind {
                    WriteKind::Set(wval) => {
                        if offset == 0 {
                            match exprs_equal(
                                std::slice::from_ref(&t_val),
                                std::slice::from_ref(wval),
                                self.ctx(ctx),
                            ) {
                                EqResult::Eq => return self.seq_action(actions, tru, ctx),
                                EqResult::Neq => return self.seq_action(actions, fls, ctx),
                                EqResult::Unknown(test) => {
                                    return self.disambiguate(test, actions, whole, ctx);
                                }
                            }
                        }
                        // An increment/decrement sits between this write and
                        // the test: only constant integers can be compared
                        // statically.
                        return match (const_int(&t_val), const_int(wval)) {
                            (Some(tv), Some(wv)) => {
                                if tv == wv + offset {
                                    self.seq_action(actions, tru, ctx)
                                } else {
                                    self.seq_action(actions, fls, ctx)
                                }
                            }
                            _ => Err(CompileError::UnsupportedStateArithmetic { var: var.clone() }),
                        };
                    }
                    WriteKind::Bump(delta) => {
                        offset += delta;
                        continue;
                    }
                },
            }
        }

        // No write in the sequence decided the test: it reads pre-existing
        // state, possibly shifted by increments of the same entry.
        let final_value = if offset == 0 {
            t_val.clone()
        } else {
            match const_int(&t_val) {
                Some(tv) => Expr::Value(Value::Int(tv - offset)),
                None => return Err(CompileError::UnsupportedStateArithmetic { var: var.clone() }),
            }
        };
        let resolved = Test::State {
            var: var.clone(),
            index: t_idx,
            value: final_value,
        };
        self.decide_or_branch(resolved, actions, tru, fls, ctx)
    }

    /// Emit a disambiguating test over the original header and re-process the
    /// state-test node on both sides with the outcome recorded in the context
    /// (Appendix E's `(test ? d : d)` expansion, done without re-interpreting
    /// the new test as a post-action test).
    fn disambiguate(
        &mut self,
        test: Test,
        actions: &ActionSeq,
        whole: NodeId,
        ctx: CtxId,
    ) -> Result<NodeId, CompileError> {
        let ct = self.ctx_with(ctx, test.clone(), true);
        let cf = self.ctx_with(ctx, test.clone(), false);
        let dt = self.seq_action(actions, whole, ct)?;
        let df = self.seq_action(actions, whole, cf)?;
        Ok(self.make_branch(test, dt, df))
    }
}

/// The outcome of a static equality comparison.
enum EqResult {
    Eq,
    Neq,
    Unknown(Test),
}

// ---------------------------------------------------------------------------
// Static analysis of action sequences
// ---------------------------------------------------------------------------

enum Resolved {
    Val(Value),
    Fld(Field),
}

fn resolve_field(f: &Field, fmap: &BTreeMap<Field, Value>, ctx: &Context) -> Resolved {
    if let Some(v) = fmap.get(f) {
        return Resolved::Val(v.clone());
    }
    if let Some(v) = ctx.definite_value(f) {
        return Resolved::Val(v);
    }
    Resolved::Fld(f.clone())
}

/// Re-express an expression over the original packet header, substituting
/// fields the sequence assigned (or the context pins down) with constants.
fn resolve_expr(e: &Expr, fmap: &BTreeMap<Field, Value>, ctx: &Context) -> Expr {
    match e {
        Expr::Value(v) => Expr::Value(v.clone()),
        Expr::Field(f) => match resolve_field(f, fmap, ctx) {
            Resolved::Val(v) => Expr::Value(v),
            Resolved::Fld(f) => Expr::Field(f),
        },
        Expr::Tuple(es) => Expr::Tuple(es.iter().map(|e| resolve_expr(e, fmap, ctx)).collect()),
    }
}

/// The net field assignments performed by a sequence (last write wins).
fn field_map(actions: &ActionSeq) -> BTreeMap<Field, Value> {
    let mut fmap = BTreeMap::new();
    for a in &actions.actions {
        if let Action::Modify(f, v) = a {
            fmap.insert(f.clone(), v.clone());
        }
    }
    fmap
}

enum WriteKind {
    /// `s[idx] ← value`
    Set(Expr),
    /// `s[idx]++` / `s[idx]--`
    Bump(i64),
}

struct StateWrite {
    index: Vec<Expr>,
    kind: WriteKind,
}

/// Collect the writes to `var` in sequence order, each with its index/value
/// expressions re-expressed over the original header using only the field
/// modifications that precede the write (Appendix E's `filter`).
fn collect_writes(actions: &ActionSeq, var: &StateVar, ctx: &Context) -> Vec<StateWrite> {
    let mut running: BTreeMap<Field, Value> = BTreeMap::new();
    let mut out = Vec::new();
    for a in &actions.actions {
        match a {
            Action::Modify(f, v) => {
                running.insert(f.clone(), v.clone());
            }
            Action::StateSet {
                var: w,
                index,
                value,
            } if w == var => out.push(StateWrite {
                index: index
                    .iter()
                    .map(|e| resolve_expr(e, &running, ctx))
                    .collect(),
                kind: WriteKind::Set(resolve_expr(value, &running, ctx)),
            }),
            Action::StateIncr { var: w, index } if w == var => out.push(StateWrite {
                index: index
                    .iter()
                    .map(|e| resolve_expr(e, &running, ctx))
                    .collect(),
                kind: WriteKind::Bump(1),
            }),
            Action::StateDecr { var: w, index } if w == var => out.push(StateWrite {
                index: index
                    .iter()
                    .map(|e| resolve_expr(e, &running, ctx))
                    .collect(),
                kind: WriteKind::Bump(-1),
            }),
            _ => {}
        }
    }
    out
}

fn const_int(e: &Expr) -> Option<i64> {
    match e {
        Expr::Value(Value::Int(i)) => Some(*i),
        _ => None,
    }
}

fn flatten_exprs(es: &[Expr], out: &mut Vec<Expr>) {
    for e in es {
        match e {
            Expr::Tuple(inner) => flatten_exprs(inner, out),
            other => out.push(other.clone()),
        }
    }
}

/// Are two (re-expressed) expression vectors equal for every packet, unequal
/// for every packet, or dependent on a header test we can emit?
fn exprs_equal(a: &[Expr], b: &[Expr], ctx: &Context) -> EqResult {
    let mut fa = Vec::new();
    let mut fb = Vec::new();
    flatten_exprs(a, &mut fa);
    flatten_exprs(b, &mut fb);
    if fa.len() != fb.len() {
        return EqResult::Neq;
    }
    for (x, y) in fa.iter().zip(fb.iter()) {
        match (x, y) {
            (Expr::Value(u), Expr::Value(v)) => {
                if u != v {
                    return EqResult::Neq;
                }
            }
            (Expr::Field(f), Expr::Field(g)) => {
                if f == g {
                    continue;
                }
                let t = Test::FieldField(f.clone(), g.clone());
                match ctx.implies(&t) {
                    Some(true) => continue,
                    Some(false) => return EqResult::Neq,
                    None => return EqResult::Unknown(t),
                }
            }
            (Expr::Field(f), Expr::Value(v)) | (Expr::Value(v), Expr::Field(f)) => {
                let t = Test::FieldValue(f.clone(), v.clone());
                match ctx.implies(&t) {
                    Some(true) => continue,
                    Some(false) => return EqResult::Neq,
                    None => return EqResult::Unknown(t),
                }
            }
            _ => return EqResult::Neq,
        }
    }
    EqResult::Eq
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test::VarOrder;
    use snap_lang::builder::field;
    use snap_lang::{Packet, Store};

    fn sv(s: &str) -> StateVar {
        StateVar::new(s)
    }

    fn pool() -> Pool {
        Pool::new(VarOrder::empty())
    }

    fn leaf_action(p: &mut Pool, a: Action) -> NodeId {
        p.leaf(Leaf::single(a))
    }

    fn test_branch(p: &mut Pool, t: Test) -> NodeId {
        let id = p.id();
        let drop = p.drop();
        p.branch(t, id, drop)
    }

    #[test]
    fn union_of_predicates_is_disjunction() {
        let mut p = pool();
        let a = test_branch(&mut p, Test::FieldValue(Field::SrcPort, Value::Int(53)));
        let b = test_branch(&mut p, Test::FieldValue(Field::DstPort, Value::Int(53)));
        let d = p.union(a, b);
        assert!(p.is_well_formed(d));
        let store = Store::new();
        let p1 = Packet::new()
            .with(Field::SrcPort, 53)
            .with(Field::DstPort, 80);
        let p2 = Packet::new()
            .with(Field::SrcPort, 80)
            .with(Field::DstPort, 53);
        let p3 = Packet::new()
            .with(Field::SrcPort, 80)
            .with(Field::DstPort, 80);
        assert_eq!(p.evaluate(d, &p1, &store).unwrap().0.len(), 1);
        assert_eq!(p.evaluate(d, &p2, &store).unwrap().0.len(), 1);
        assert_eq!(p.evaluate(d, &p3, &store).unwrap().0.len(), 0);
    }

    #[test]
    fn union_is_memoized() {
        let mut p = pool();
        let a = test_branch(&mut p, Test::FieldValue(Field::SrcPort, Value::Int(53)));
        let b = test_branch(&mut p, Test::FieldValue(Field::DstPort, Value::Int(53)));
        let d1 = p.union(a, b);
        let nodes_after_first = p.len();
        // Repeating the union (in either order — it is commutative) hits the
        // memo and interns nothing new.
        let d2 = p.union(a, b);
        let d3 = p.union(b, a);
        assert_eq!(d1, d2);
        assert_eq!(d1, d3);
        assert_eq!(p.len(), nodes_after_first);
    }

    #[test]
    fn union_refines_contradicting_subtrees() {
        // (srcport = 53 ? id : drop) ⊕ (srcport = 80 ? id : drop): on the
        // true branch of srcport=53, the srcport=80 test must be refined
        // away.
        let mut p = pool();
        let a = test_branch(&mut p, Test::FieldValue(Field::SrcPort, Value::Int(53)));
        let b = test_branch(&mut p, Test::FieldValue(Field::SrcPort, Value::Int(80)));
        let d = p.union(a, b);
        assert!(p.is_well_formed(d));
        // No path should test srcport twice.
        for (path, _) in p.paths(d) {
            let fields: Vec<_> = path
                .iter()
                .filter(|(t, _)| matches!(t, Test::FieldValue(Field::SrcPort, _)))
                .collect();
            assert!(fields.len() <= 2);
        }
        let store = Store::new();
        let pkt = Packet::new().with(Field::SrcPort, 80);
        assert_eq!(p.evaluate(d, &pkt, &store).unwrap().0.len(), 1);
    }

    #[test]
    fn negate_flips_pass_and_drop() {
        let mut p = pool();
        let a = test_branch(&mut p, Test::FieldValue(Field::SrcPort, Value::Int(53)));
        let n = p.negate(a);
        let store = Store::new();
        let dns = Packet::new().with(Field::SrcPort, 53);
        let web = Packet::new().with(Field::SrcPort, 80);
        assert!(p.evaluate(n, &dns, &store).unwrap().0.is_empty());
        assert_eq!(p.evaluate(n, &web, &store).unwrap().0.len(), 1);
        let id = p.id();
        let drop = p.drop();
        assert_eq!(p.negate(id), drop);
        assert_eq!(p.negate(drop), id);
        // Memoized: same input, same output id.
        assert_eq!(p.negate(a), n);
    }

    #[test]
    fn restrict_keeps_only_matching_side() {
        let mut p = pool();
        let t = Test::FieldValue(Field::SrcPort, Value::Int(53));
        let d = leaf_action(&mut p, Action::Modify(Field::OutPort, Value::Int(1)));
        let pos = p.restrict(d, &t, true);
        let neg = p.restrict(d, &t, false);
        let store = Store::new();
        let dns = Packet::new().with(Field::SrcPort, 53);
        let web = Packet::new().with(Field::SrcPort, 80);
        assert_eq!(p.evaluate(pos, &dns, &store).unwrap().0.len(), 1);
        assert!(p.evaluate(pos, &web, &store).unwrap().0.is_empty());
        assert!(p.evaluate(neg, &dns, &store).unwrap().0.is_empty());
        assert_eq!(p.evaluate(neg, &web, &store).unwrap().0.len(), 1);
    }

    #[test]
    fn make_branch_handles_out_of_order_tests() {
        // The branches contain a test that precedes the branch test in the
        // global order; make_branch must still build a well-formed diagram.
        let mut p = pool();
        let early = Test::FieldValue(Field::DstIp, Value::ip(1, 1, 1, 1));
        let late = Test::FieldValue(Field::SrcPort, Value::Int(53));
        let dt = test_branch(&mut p, early.clone());
        let drop = p.drop();
        let d = p.make_branch(late.clone(), dt, drop);
        assert!(p.is_well_formed(d));
        let store = Store::new();
        let yes = Packet::new()
            .with(Field::SrcPort, 53)
            .with(Field::DstIp, Value::ip(1, 1, 1, 1));
        let no = Packet::new()
            .with(Field::SrcPort, 80)
            .with(Field::DstIp, Value::ip(1, 1, 1, 1));
        assert_eq!(p.evaluate(d, &yes, &store).unwrap().0.len(), 1);
        assert!(p.evaluate(d, &no, &store).unwrap().0.is_empty());
    }

    #[test]
    fn seq_modification_then_test_is_resolved_statically() {
        // (outport <- 6) ; (outport = 6 ? id : drop)  ≡  outport <- 6
        let mut p = pool();
        let set = leaf_action(&mut p, Action::Modify(Field::OutPort, Value::Int(6)));
        let check = test_branch(&mut p, Test::FieldValue(Field::OutPort, Value::Int(6)));
        let d = p.seq(set, check).unwrap();
        assert!(p.is_well_formed(d));
        let store = Store::new();
        let pkt = Packet::new().with(Field::InPort, 1);
        let (pkts, _) = p.evaluate(d, &pkt, &store).unwrap();
        assert_eq!(pkts.len(), 1);
        // And against a different constant the packet is dropped.
        let check5 = test_branch(&mut p, Test::FieldValue(Field::OutPort, Value::Int(5)));
        let d = p.seq(set, check5).unwrap();
        assert!(p.evaluate(d, &pkt, &store).unwrap().0.is_empty());
        // No residual test on outport should remain in either diagram.
        assert_eq!(p.num_tests(d), 0);
    }

    #[test]
    fn seq_is_memoized() {
        let mut p = pool();
        let set = leaf_action(&mut p, Action::Modify(Field::OutPort, Value::Int(6)));
        let check = test_branch(&mut p, Test::FieldValue(Field::OutPort, Value::Int(6)));
        let d1 = p.seq(set, check).unwrap();
        let nodes_after_first = p.len();
        let d2 = p.seq(set, check).unwrap();
        assert_eq!(d1, d2);
        assert_eq!(p.len(), nodes_after_first);
    }

    #[test]
    fn seq_state_write_then_same_entry_test() {
        // s[srcip] <- 1 ; (s[srcip] = 1 ? id : drop) ≡ s[srcip] <- 1
        let mut p = pool();
        let w = leaf_action(
            &mut p,
            Action::StateSet {
                var: sv("s"),
                index: vec![field(Field::SrcIp)],
                value: Expr::Value(Value::Int(1)),
            },
        );
        let t = test_branch(
            &mut p,
            Test::State {
                var: sv("s"),
                index: vec![field(Field::SrcIp)],
                value: Expr::Value(Value::Int(1)),
            },
        );
        let d = p.seq(w, t).unwrap();
        // The state test must have been eliminated: the write decides it.
        assert_eq!(p.num_tests(d), 0);
        let pkt = Packet::new().with(Field::SrcIp, Value::ip(9, 9, 9, 9));
        let (pkts, store) = p.evaluate(d, &pkt, &Store::new()).unwrap();
        assert_eq!(pkts.len(), 1);
        assert_eq!(store.get(&sv("s"), &[Value::ip(9, 9, 9, 9)]), Value::Int(1));
    }

    #[test]
    fn seq_state_write_different_field_needs_field_field_test() {
        // s[srcip] <- e ; (s[dstip] = e ? d1 : d2): whether the write decides
        // the test depends on srcip = dstip, so a field-field test appears.
        let mut p = pool();
        let w = leaf_action(
            &mut p,
            Action::StateSet {
                var: sv("s"),
                index: vec![field(Field::SrcIp)],
                value: Expr::Value(Value::Int(1)),
            },
        );
        let t = test_branch(
            &mut p,
            Test::State {
                var: sv("s"),
                index: vec![field(Field::DstIp)],
                value: Expr::Value(Value::Int(1)),
            },
        );
        let d = p.seq(w, t).unwrap();
        assert!(p.is_well_formed(d));
        let has_ff = p.paths(d).iter().any(|(path, _)| {
            path.iter()
                .any(|(t, _)| matches!(t, Test::FieldField(_, _)))
        });
        assert!(has_ff, "expected a field-field test in {}", p.debug(d));

        // Behaviour check against the obvious semantics.
        let store = Store::new();
        let same = Packet::new()
            .with(Field::SrcIp, Value::ip(1, 1, 1, 1))
            .with(Field::DstIp, Value::ip(1, 1, 1, 1));
        let diff = Packet::new()
            .with(Field::SrcIp, Value::ip(1, 1, 1, 1))
            .with(Field::DstIp, Value::ip(2, 2, 2, 2));
        // srcip = dstip: the write makes the test true -> pass.
        assert_eq!(p.evaluate(d, &same, &store).unwrap().0.len(), 1);
        // different: the test reads pre-existing state (0 ≠ 1) -> drop.
        assert!(p.evaluate(d, &diff, &store).unwrap().0.is_empty());
        // ... unless the pre-existing state already holds 1 at dstip.
        let mut seeded = Store::new();
        seeded.set(&sv("s"), vec![Value::ip(2, 2, 2, 2)], Value::Int(1));
        assert_eq!(p.evaluate(d, &diff, &seeded).unwrap().0.len(), 1);
    }

    #[test]
    fn seq_increment_then_constant_test_shifts_the_constant() {
        // c[srcip]++ ; (c[srcip] = 3 ? id : drop): equivalent to testing the
        // *pre*-increment value against 2.
        let mut p = pool();
        let inc = leaf_action(
            &mut p,
            Action::StateIncr {
                var: sv("c"),
                index: vec![field(Field::SrcIp)],
            },
        );
        let t = test_branch(
            &mut p,
            Test::State {
                var: sv("c"),
                index: vec![field(Field::SrcIp)],
                value: Expr::Value(Value::Int(3)),
            },
        );
        let d = p.seq(inc, t).unwrap();
        let pkt = Packet::new().with(Field::SrcIp, Value::ip(7, 7, 7, 7));
        let mut store = Store::new();
        store.set(&sv("c"), vec![Value::ip(7, 7, 7, 7)], Value::Int(2));
        let (pkts, new_store) = p.evaluate(d, &pkt, &store).unwrap();
        assert_eq!(pkts.len(), 1);
        assert_eq!(
            new_store.get(&sv("c"), &[Value::ip(7, 7, 7, 7)]),
            Value::Int(3)
        );
        // With a pre-state of 0 the packet is dropped (post-value 1 ≠ 3).
        let (pkts, _) = p.evaluate(d, &pkt, &Store::new()).unwrap();
        assert!(pkts.is_empty());
    }

    #[test]
    fn seq_increment_then_non_constant_test_is_rejected() {
        let mut p = pool();
        let inc = leaf_action(
            &mut p,
            Action::StateIncr {
                var: sv("c"),
                index: vec![field(Field::SrcIp)],
            },
        );
        let t = test_branch(
            &mut p,
            Test::State {
                var: sv("c"),
                index: vec![field(Field::SrcIp)],
                value: Expr::Field(Field::DstPort),
            },
        );
        let err = p.seq(inc, t).unwrap_err();
        assert!(matches!(
            err,
            CompileError::UnsupportedStateArithmetic { .. }
        ));
        // The error is memoized too.
        let err2 = p.seq(inc, t).unwrap_err();
        assert_eq!(err, err2);
    }

    #[test]
    fn seq_set_then_set_last_write_wins() {
        // s[0] <- 1; s[0] <- 2 ; (s[0] = 2 ? id : drop) keeps packets.
        let mut p = pool();
        let w = p.leaf(Leaf::from_seq(ActionSeq::from_actions(vec![
            Action::StateSet {
                var: sv("s"),
                index: vec![Expr::Value(Value::Int(0))],
                value: Expr::Value(Value::Int(1)),
            },
            Action::StateSet {
                var: sv("s"),
                index: vec![Expr::Value(Value::Int(0))],
                value: Expr::Value(Value::Int(2)),
            },
        ])));
        let t = test_branch(
            &mut p,
            Test::State {
                var: sv("s"),
                index: vec![Expr::Value(Value::Int(0))],
                value: Expr::Value(Value::Int(2)),
            },
        );
        let d = p.seq(w, t).unwrap();
        assert_eq!(p.num_tests(d), 0);
        let (pkts, _) = p.evaluate(d, &Packet::new(), &Store::new()).unwrap();
        assert_eq!(pkts.len(), 1);
    }

    #[test]
    fn seq_modified_field_in_write_index_uses_preceding_value() {
        // outport <- 6; s[outport] <- 1; (s[outport] = 1 ? id : drop):
        // the write and the test both see outport = 6, so the test is
        // decided.
        let mut p = pool();
        let w = p.leaf(Leaf::from_seq(ActionSeq::from_actions(vec![
            Action::Modify(Field::OutPort, Value::Int(6)),
            Action::StateSet {
                var: sv("s"),
                index: vec![field(Field::OutPort)],
                value: Expr::Value(Value::Int(1)),
            },
        ])));
        let t = test_branch(
            &mut p,
            Test::State {
                var: sv("s"),
                index: vec![field(Field::OutPort)],
                value: Expr::Value(Value::Int(1)),
            },
        );
        let d = p.seq(w, t).unwrap();
        assert_eq!(p.num_tests(d), 0);
        let (pkts, _) = p.evaluate(d, &Packet::new(), &Store::new()).unwrap();
        assert_eq!(pkts.len(), 1);
    }

    #[test]
    fn seq_write_after_field_change_does_not_decide_pre_change_index() {
        // s[srcip] <- 1; srcip <- 9.9.9.9 ; (s[srcip] = 1 ? id : drop):
        // the test reads s at the *new* srcip (9.9.9.9), which the write (at
        // the old srcip) only decides if the old srcip was already 9.9.9.9.
        let mut p = pool();
        let w = p.leaf(Leaf::from_seq(ActionSeq::from_actions(vec![
            Action::StateSet {
                var: sv("s"),
                index: vec![field(Field::SrcIp)],
                value: Expr::Value(Value::Int(1)),
            },
            Action::Modify(Field::SrcIp, Value::ip(9, 9, 9, 9)),
        ])));
        let t = test_branch(
            &mut p,
            Test::State {
                var: sv("s"),
                index: vec![field(Field::SrcIp)],
                value: Expr::Value(Value::Int(1)),
            },
        );
        let d = p.seq(w, t).unwrap();
        assert!(p.is_well_formed(d));
        let store = Store::new();
        // Old srcip is different from 9.9.9.9: write does not alias the
        // read, pre-state is 0, packet dropped.
        let other = Packet::new().with(Field::SrcIp, Value::ip(1, 1, 1, 1));
        assert!(p.evaluate(d, &other, &store).unwrap().0.is_empty());
        // Old srcip *is* 9.9.9.9: the write decides the test -> pass.
        let aliased = Packet::new().with(Field::SrcIp, Value::ip(9, 9, 9, 9));
        assert_eq!(p.evaluate(d, &aliased, &store).unwrap().0.len(), 1);
    }

    #[test]
    fn seq_through_branches_distributes() {
        // (srcport = 53 ? outport <- 1 : outport <- 2) ; (outport = 1 ? id : drop)
        let mut p = pool();
        let then_leaf = leaf_action(&mut p, Action::Modify(Field::OutPort, Value::Int(1)));
        let else_leaf = leaf_action(&mut p, Action::Modify(Field::OutPort, Value::Int(2)));
        let first = p.branch(
            Test::FieldValue(Field::SrcPort, Value::Int(53)),
            then_leaf,
            else_leaf,
        );
        let second = test_branch(&mut p, Test::FieldValue(Field::OutPort, Value::Int(1)));
        let d = p.seq(first, second).unwrap();
        assert!(p.is_well_formed(d));
        let store = Store::new();
        let dns = Packet::new().with(Field::SrcPort, 53);
        let web = Packet::new().with(Field::SrcPort, 80);
        assert_eq!(p.evaluate(d, &dns, &store).unwrap().0.len(), 1);
        assert!(p.evaluate(d, &web, &store).unwrap().0.is_empty());
    }

    #[test]
    fn exprs_equal_basics() {
        let ctx = Context::new();
        assert!(matches!(
            exprs_equal(
                &[Expr::Value(Value::Int(1))],
                &[Expr::Value(Value::Int(1))],
                &ctx
            ),
            EqResult::Eq
        ));
        assert!(matches!(
            exprs_equal(
                &[Expr::Value(Value::Int(1))],
                &[Expr::Value(Value::Int(2))],
                &ctx
            ),
            EqResult::Neq
        ));
        assert!(matches!(
            exprs_equal(&[field(Field::SrcIp)], &[field(Field::SrcIp)], &ctx),
            EqResult::Eq
        ));
        assert!(matches!(
            exprs_equal(&[field(Field::SrcIp)], &[field(Field::DstIp)], &ctx),
            EqResult::Unknown(Test::FieldField(_, _))
        ));
        // Different lengths can never be equal.
        assert!(matches!(
            exprs_equal(&[field(Field::SrcIp)], &[], &ctx),
            EqResult::Neq
        ));
        // Tuples are flattened before comparison.
        assert!(matches!(
            exprs_equal(
                &[Expr::Tuple(vec![
                    field(Field::SrcIp),
                    Expr::Value(Value::Int(1))
                ])],
                &[field(Field::SrcIp), Expr::Value(Value::Int(1))],
                &ctx
            ),
            EqResult::Eq
        ));
    }
}
