//! xFDD composition operators: union (`⊕`), negation (`⊖`), restriction
//! (`·|t`) and sequential composition (`⊙`), following Figures 7–8 and
//! Appendices B/E of the paper.
//!
//! The delicate part is composing an *action sequence* with a *branch*: the
//! actions happen "before" the test, so the test must be re-expressed over
//! the original packet header and the pre-existing state. That is where the
//! field-field tests and the context machinery come in.

use crate::action::{Action, ActionSeq, Leaf};
use crate::context::Context;
use crate::diagram::Xfdd;
use crate::error::CompileError;
use crate::test::{Test, VarOrder};
use snap_lang::{Expr, Field, StateVar, Value};
use std::cmp::Ordering;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Union, negation, restriction
// ---------------------------------------------------------------------------

/// `d1 ⊕ d2` — parallel composition of diagrams.
pub fn union(d1: &Xfdd, d2: &Xfdd, order: &VarOrder) -> Xfdd {
    union_ctx(d1, d2, order, &Context::new())
}

fn union_ctx(d1: &Xfdd, d2: &Xfdd, order: &VarOrder, ctx: &Context) -> Xfdd {
    let d1 = refine(d1, ctx);
    let d2 = refine(d2, ctx);
    match (d1, d2) {
        (Xfdd::Leaf(a), Xfdd::Leaf(b)) => Xfdd::Leaf(a.union(b)),
        (Xfdd::Branch { test, tru, fls }, leaf @ Xfdd::Leaf(_)) => Xfdd::branch(
            test.clone(),
            union_ctx(tru, leaf, order, &ctx.with(test.clone(), true)),
            union_ctx(fls, leaf, order, &ctx.with(test.clone(), false)),
        ),
        (leaf @ Xfdd::Leaf(_), Xfdd::Branch { test, tru, fls }) => Xfdd::branch(
            test.clone(),
            union_ctx(leaf, tru, order, &ctx.with(test.clone(), true)),
            union_ctx(leaf, fls, order, &ctx.with(test.clone(), false)),
        ),
        (
            b1 @ Xfdd::Branch {
                test: t1,
                tru: d11,
                fls: d12,
            },
            b2 @ Xfdd::Branch {
                test: t2,
                tru: d21,
                fls: d22,
            },
        ) => match t1.cmp_in(t2, order) {
            Ordering::Equal => Xfdd::branch(
                t1.clone(),
                union_ctx(d11, d21, order, &ctx.with(t1.clone(), true)),
                union_ctx(d12, d22, order, &ctx.with(t1.clone(), false)),
            ),
            Ordering::Less => Xfdd::branch(
                t1.clone(),
                union_ctx(d11, b2, order, &ctx.with(t1.clone(), true)),
                union_ctx(d12, b2, order, &ctx.with(t1.clone(), false)),
            ),
            Ordering::Greater => Xfdd::branch(
                t2.clone(),
                union_ctx(b1, d21, order, &ctx.with(t2.clone(), true)),
                union_ctx(b1, d22, order, &ctx.with(t2.clone(), false)),
            ),
        },
    }
}

/// The paper's `refine`: strip redundant or contradicting tests from the top
/// of a diagram given what the context already implies.
fn refine<'a>(d: &'a Xfdd, ctx: &Context) -> &'a Xfdd {
    let mut cur = d;
    loop {
        match cur {
            Xfdd::Branch { test, tru, fls } => match ctx.implies(test) {
                Some(true) => cur = tru,
                Some(false) => cur = fls,
                None => return cur,
            },
            Xfdd::Leaf(_) => return cur,
        }
    }
}

/// `⊖d` — negation. Only meaningful for predicate diagrams (leaves `{id}` /
/// `{drop}`); a leaf with real actions is treated as "passes" and therefore
/// negates to `drop`.
pub fn negate(d: &Xfdd) -> Xfdd {
    match d {
        Xfdd::Leaf(l) => {
            if l.is_drop() {
                Xfdd::id()
            } else {
                Xfdd::drop()
            }
        }
        Xfdd::Branch { test, tru, fls } => Xfdd::branch(test.clone(), negate(tru), negate(fls)),
    }
}

/// `d|t` (when `positive`) or `d|¬t` (otherwise): keep `d`'s behaviour only
/// where the test has the given outcome; drop elsewhere.
pub fn restrict(d: &Xfdd, test: &Test, positive: bool, order: &VarOrder) -> Xfdd {
    match d {
        Xfdd::Leaf(l) => {
            if l.is_drop() {
                Xfdd::drop()
            } else if positive {
                Xfdd::branch(test.clone(), d.clone(), Xfdd::drop())
            } else {
                Xfdd::branch(test.clone(), Xfdd::drop(), d.clone())
            }
        }
        Xfdd::Branch {
            test: t1,
            tru,
            fls,
        } => match t1.cmp_in(test, order) {
            Ordering::Equal => {
                if positive {
                    Xfdd::branch(t1.clone(), (**tru).clone(), Xfdd::drop())
                } else {
                    Xfdd::branch(t1.clone(), Xfdd::drop(), (**fls).clone())
                }
            }
            Ordering::Greater => {
                // `test` comes first in the order: hoist it above `d`.
                if positive {
                    Xfdd::branch(test.clone(), d.clone(), Xfdd::drop())
                } else {
                    Xfdd::branch(test.clone(), Xfdd::drop(), d.clone())
                }
            }
            Ordering::Less => Xfdd::branch(
                t1.clone(),
                restrict(tru, test, positive, order),
                restrict(fls, test, positive, order),
            ),
        },
    }
}

/// Build a semantically correct, well-formed `test ? dt : df` even when `dt`
/// or `df` contain tests that precede `test` in the global order.
pub fn make_branch(test: Test, dt: Xfdd, df: Xfdd, order: &VarOrder) -> Xfdd {
    union(
        &restrict(&dt, &test, true, order),
        &restrict(&df, &test, false, order),
        order,
    )
}

// ---------------------------------------------------------------------------
// Sequential composition
// ---------------------------------------------------------------------------

/// `d1 ⊙ d2` — sequential composition of diagrams.
pub fn seq(d1: &Xfdd, d2: &Xfdd, order: &VarOrder) -> Result<Xfdd, CompileError> {
    match d1 {
        Xfdd::Leaf(l) => {
            if l.is_drop() {
                return Ok(Xfdd::drop());
            }
            let mut acc = Xfdd::drop();
            for a in &l.0 {
                let part = seq_action(a, d2, &Context::new(), order)?;
                acc = union(&acc, &part, order);
            }
            Ok(acc)
        }
        Xfdd::Branch { test, tru, fls } => {
            let a = seq(tru, d2, order)?;
            let b = seq(fls, d2, order)?;
            Ok(make_branch(test.clone(), a, b, order))
        }
    }
}

/// The outcome of a static equality comparison.
enum EqResult {
    Eq,
    Neq,
    Unknown(Test),
}

/// Compose a single action sequence with a diagram (`as ⊙ d`), threading a
/// context of decided tests — Appendix E's `seq(a, d, T)`.
fn seq_action(
    actions: &ActionSeq,
    d: &Xfdd,
    ctx: &Context,
    order: &VarOrder,
) -> Result<Xfdd, CompileError> {
    // A sequence that already dropped the packet never reaches the rest of
    // the program, but its state updates still take effect.
    if actions.drops {
        return Ok(Xfdd::Leaf(Leaf::from_seq(actions.clone())));
    }
    let (test, tru, fls) = match d {
        Xfdd::Leaf(l) => {
            if l.is_drop() {
                // `as ⊙ {drop}`: the actions run, then the packet is dropped.
                return Ok(Xfdd::Leaf(Leaf::from_seq(actions.clone().with_drop())));
            }
            let mut out = Leaf::drop();
            for suffix in &l.0 {
                out.insert(actions.concat(suffix));
            }
            return Ok(Xfdd::Leaf(out));
        }
        Xfdd::Branch { test, tru, fls } => (test, tru.as_ref(), fls.as_ref()),
    };

    let fmap = field_map(actions);
    match test {
        Test::FieldValue(f, v) => {
            if let Some(assigned) = fmap.get(f) {
                // The sequence overwrote the field: the test is decided.
                return if v.matches(assigned) {
                    seq_action(actions, tru, ctx, order)
                } else {
                    seq_action(actions, fls, ctx, order)
                };
            }
            decide_or_branch(test.clone(), actions, tru, fls, ctx, order)
        }
        Test::FieldField(f, g) => {
            let rf = resolve_field(f, &fmap, ctx);
            let rg = resolve_field(g, &fmap, ctx);
            match (rf, rg) {
                (Resolved::Val(a), Resolved::Val(b)) => {
                    if a == b {
                        seq_action(actions, tru, ctx, order)
                    } else {
                        seq_action(actions, fls, ctx, order)
                    }
                }
                (Resolved::Val(a), Resolved::Fld(g2)) => {
                    decide_or_branch(Test::FieldValue(g2, a), actions, tru, fls, ctx, order)
                }
                (Resolved::Fld(f2), Resolved::Val(b)) => {
                    decide_or_branch(Test::FieldValue(f2, b), actions, tru, fls, ctx, order)
                }
                (Resolved::Fld(f2), Resolved::Fld(g2)) => {
                    if f2 == g2 {
                        seq_action(actions, tru, ctx, order)
                    } else {
                        decide_or_branch(Test::FieldField(f2, g2), actions, tru, fls, ctx, order)
                    }
                }
            }
        }
        Test::State { var, index, value } => {
            seq_action_state(actions, d, tru, fls, var, index, value, &fmap, ctx, order)
        }
    }
}

/// Check the context for the (already re-expressed) test; recurse into the
/// decided branch or build a well-formed branch over it.
fn decide_or_branch(
    test: Test,
    actions: &ActionSeq,
    tru: &Xfdd,
    fls: &Xfdd,
    ctx: &Context,
    order: &VarOrder,
) -> Result<Xfdd, CompileError> {
    match ctx.implies(&test) {
        Some(true) => seq_action(actions, tru, ctx, order),
        Some(false) => seq_action(actions, fls, ctx, order),
        None => {
            let dt = seq_action(actions, tru, &ctx.with(test.clone(), true), order)?;
            let df = seq_action(actions, fls, &ctx.with(test.clone(), false), order)?;
            Ok(make_branch(test, dt, df, order))
        }
    }
}

/// The hardest case: `as ⊙ (s[e1] = e2 ? d1 : d2)`.
///
/// The writes to `s` inside `as` may determine the test: scanning from the
/// latest write backwards, a write to the same entry with a known value
/// decides the test (possibly shifted by intervening increments/decrements),
/// and a write to a *possibly* equal entry forces a disambiguating
/// field-field / field-value test to be inserted (the `(test ? d : d)` trick
/// of Appendix E). If no write is relevant, the test reads pre-existing state
/// and is emitted, re-expressed over the original packet header.
#[allow(clippy::too_many_arguments)]
fn seq_action_state(
    actions: &ActionSeq,
    whole: &Xfdd,
    tru: &Xfdd,
    fls: &Xfdd,
    var: &StateVar,
    index: &[Expr],
    value: &Expr,
    fmap: &BTreeMap<Field, Value>,
    ctx: &Context,
    order: &VarOrder,
) -> Result<Xfdd, CompileError> {
    // Test expressions re-expressed over the original header: fields that the
    // sequence modified become the constants it assigned.
    let t_idx: Vec<Expr> = index.iter().map(|e| resolve_expr(e, fmap, ctx)).collect();
    let t_val: Expr = resolve_expr(value, fmap, ctx);

    // Writes to `var` inside the sequence, each re-expressed over the
    // original header using only the field modifications that *precede* it.
    let writes = collect_writes(actions, var, ctx);

    let mut offset: i64 = 0;
    for w in writes.iter().rev() {
        match exprs_equal(&t_idx, &w.index, ctx) {
            EqResult::Neq => continue,
            EqResult::Unknown(test) => {
                // Emit the disambiguating test (it is expressed over the
                // *original* header) and redo this node on both sides with
                // the outcome recorded in the context, which then decides
                // the equality.
                return disambiguate(test, actions, whole, ctx, order);
            }
            EqResult::Eq => match &w.kind {
                WriteKind::Set(wval) => {
                    if offset == 0 {
                        match exprs_equal(
                            std::slice::from_ref(&t_val),
                            std::slice::from_ref(wval),
                            ctx,
                        ) {
                            EqResult::Eq => return seq_action(actions, tru, ctx, order),
                            EqResult::Neq => return seq_action(actions, fls, ctx, order),
                            EqResult::Unknown(test) => {
                                return disambiguate(test, actions, whole, ctx, order);
                            }
                        }
                    }
                    // An increment/decrement sits between this write and the
                    // test: only constant integers can be compared statically.
                    return match (const_int(&t_val), const_int(wval)) {
                        (Some(tv), Some(wv)) => {
                            if tv == wv + offset {
                                seq_action(actions, tru, ctx, order)
                            } else {
                                seq_action(actions, fls, ctx, order)
                            }
                        }
                        _ => Err(CompileError::UnsupportedStateArithmetic { var: var.clone() }),
                    };
                }
                WriteKind::Bump(delta) => {
                    offset += delta;
                    continue;
                }
            },
        }
    }

    // No write in the sequence decided the test: it reads pre-existing state,
    // possibly shifted by increments of the same entry.
    let final_value = if offset == 0 {
        t_val.clone()
    } else {
        match const_int(&t_val) {
            Some(tv) => Expr::Value(Value::Int(tv - offset)),
            None => return Err(CompileError::UnsupportedStateArithmetic { var: var.clone() }),
        }
    };
    let resolved = Test::State {
        var: var.clone(),
        index: t_idx,
        value: final_value,
    };
    decide_or_branch(resolved, actions, tru, fls, ctx, order)
}

/// Emit a disambiguating test over the original header and re-process the
/// state-test node on both sides with the outcome recorded in the context
/// (Appendix E's `(test ? d : d)` expansion, done without re-interpreting the
/// new test as a post-action test).
fn disambiguate(
    test: Test,
    actions: &ActionSeq,
    whole: &Xfdd,
    ctx: &Context,
    order: &VarOrder,
) -> Result<Xfdd, CompileError> {
    let dt = seq_action(actions, whole, &ctx.with(test.clone(), true), order)?;
    let df = seq_action(actions, whole, &ctx.with(test.clone(), false), order)?;
    Ok(make_branch(test, dt, df, order))
}

// ---------------------------------------------------------------------------
// Static analysis of action sequences
// ---------------------------------------------------------------------------

enum Resolved {
    Val(Value),
    Fld(Field),
}

fn resolve_field(f: &Field, fmap: &BTreeMap<Field, Value>, ctx: &Context) -> Resolved {
    if let Some(v) = fmap.get(f) {
        return Resolved::Val(v.clone());
    }
    if let Some(v) = ctx.definite_value(f) {
        return Resolved::Val(v);
    }
    Resolved::Fld(f.clone())
}

/// Re-express an expression over the original packet header, substituting
/// fields the sequence assigned (or the context pins down) with constants.
fn resolve_expr(e: &Expr, fmap: &BTreeMap<Field, Value>, ctx: &Context) -> Expr {
    match e {
        Expr::Value(v) => Expr::Value(v.clone()),
        Expr::Field(f) => match resolve_field(f, fmap, ctx) {
            Resolved::Val(v) => Expr::Value(v),
            Resolved::Fld(f) => Expr::Field(f),
        },
        Expr::Tuple(es) => Expr::Tuple(es.iter().map(|e| resolve_expr(e, fmap, ctx)).collect()),
    }
}

/// The net field assignments performed by a sequence (last write wins).
fn field_map(actions: &ActionSeq) -> BTreeMap<Field, Value> {
    let mut fmap = BTreeMap::new();
    for a in &actions.actions {
        if let Action::Modify(f, v) = a {
            fmap.insert(f.clone(), v.clone());
        }
    }
    fmap
}

enum WriteKind {
    /// `s[idx] ← value`
    Set(Expr),
    /// `s[idx]++` / `s[idx]--`
    Bump(i64),
}

struct StateWrite {
    index: Vec<Expr>,
    kind: WriteKind,
}

/// Collect the writes to `var` in sequence order, each with its index/value
/// expressions re-expressed over the original header using only the field
/// modifications that precede the write (Appendix E's `filter`).
fn collect_writes(actions: &ActionSeq, var: &StateVar, ctx: &Context) -> Vec<StateWrite> {
    let mut running: BTreeMap<Field, Value> = BTreeMap::new();
    let mut out = Vec::new();
    for a in &actions.actions {
        match a {
            Action::Modify(f, v) => {
                running.insert(f.clone(), v.clone());
            }
            Action::StateSet {
                var: w,
                index,
                value,
            } if w == var => out.push(StateWrite {
                index: index.iter().map(|e| resolve_expr(e, &running, ctx)).collect(),
                kind: WriteKind::Set(resolve_expr(value, &running, ctx)),
            }),
            Action::StateIncr { var: w, index } if w == var => out.push(StateWrite {
                index: index.iter().map(|e| resolve_expr(e, &running, ctx)).collect(),
                kind: WriteKind::Bump(1),
            }),
            Action::StateDecr { var: w, index } if w == var => out.push(StateWrite {
                index: index.iter().map(|e| resolve_expr(e, &running, ctx)).collect(),
                kind: WriteKind::Bump(-1),
            }),
            _ => {}
        }
    }
    out
}

fn const_int(e: &Expr) -> Option<i64> {
    match e {
        Expr::Value(Value::Int(i)) => Some(*i),
        _ => None,
    }
}

fn flatten_exprs(es: &[Expr], out: &mut Vec<Expr>) {
    for e in es {
        match e {
            Expr::Tuple(inner) => flatten_exprs(inner, out),
            other => out.push(other.clone()),
        }
    }
}

/// Are two (re-expressed) expression vectors equal for every packet, unequal
/// for every packet, or dependent on a header test we can emit?
fn exprs_equal(a: &[Expr], b: &[Expr], ctx: &Context) -> EqResult {
    let mut fa = Vec::new();
    let mut fb = Vec::new();
    flatten_exprs(a, &mut fa);
    flatten_exprs(b, &mut fb);
    if fa.len() != fb.len() {
        return EqResult::Neq;
    }
    for (x, y) in fa.iter().zip(fb.iter()) {
        match (x, y) {
            (Expr::Value(u), Expr::Value(v)) => {
                if u != v {
                    return EqResult::Neq;
                }
            }
            (Expr::Field(f), Expr::Field(g)) => {
                if f == g {
                    continue;
                }
                let t = Test::FieldField(f.clone(), g.clone());
                match ctx.implies(&t) {
                    Some(true) => continue,
                    Some(false) => return EqResult::Neq,
                    None => return EqResult::Unknown(t),
                }
            }
            (Expr::Field(f), Expr::Value(v)) | (Expr::Value(v), Expr::Field(f)) => {
                let t = Test::FieldValue(f.clone(), v.clone());
                match ctx.implies(&t) {
                    Some(true) => continue,
                    Some(false) => return EqResult::Neq,
                    None => return EqResult::Unknown(t),
                }
            }
            _ => return EqResult::Neq,
        }
    }
    EqResult::Eq
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_lang::builder::field;
    use snap_lang::{Packet, Store};

    fn sv(s: &str) -> StateVar {
        StateVar::new(s)
    }

    fn order() -> VarOrder {
        VarOrder::empty()
    }

    fn leaf_action(a: Action) -> Xfdd {
        Xfdd::Leaf(Leaf::single(a))
    }

    fn test_branch(t: Test) -> Xfdd {
        Xfdd::branch(t, Xfdd::id(), Xfdd::drop())
    }

    #[test]
    fn union_of_predicates_is_disjunction() {
        let a = test_branch(Test::FieldValue(Field::SrcPort, Value::Int(53)));
        let b = test_branch(Test::FieldValue(Field::DstPort, Value::Int(53)));
        let d = union(&a, &b, &order());
        assert!(d.is_well_formed(&order()));
        let store = Store::new();
        let p1 = Packet::new().with(Field::SrcPort, 53).with(Field::DstPort, 80);
        let p2 = Packet::new().with(Field::SrcPort, 80).with(Field::DstPort, 53);
        let p3 = Packet::new().with(Field::SrcPort, 80).with(Field::DstPort, 80);
        assert_eq!(d.evaluate(&p1, &store).unwrap().0.len(), 1);
        assert_eq!(d.evaluate(&p2, &store).unwrap().0.len(), 1);
        assert_eq!(d.evaluate(&p3, &store).unwrap().0.len(), 0);
    }

    #[test]
    fn union_refines_contradicting_subtrees() {
        // (srcport = 53 ? id : drop) ⊕ (srcport = 80 ? id : drop): on the true
        // branch of srcport=53, the srcport=80 test must be refined away.
        let a = test_branch(Test::FieldValue(Field::SrcPort, Value::Int(53)));
        let b = test_branch(Test::FieldValue(Field::SrcPort, Value::Int(80)));
        let d = union(&a, &b, &order());
        assert!(d.is_well_formed(&order()));
        // No path should test srcport twice.
        for (path, _) in d.paths() {
            let fields: Vec<_> = path
                .iter()
                .filter(|(t, _)| matches!(t, Test::FieldValue(Field::SrcPort, _)))
                .collect();
            assert!(fields.len() <= 2);
        }
        let store = Store::new();
        let p = Packet::new().with(Field::SrcPort, 80);
        assert_eq!(d.evaluate(&p, &store).unwrap().0.len(), 1);
    }

    #[test]
    fn negate_flips_pass_and_drop() {
        let a = test_branch(Test::FieldValue(Field::SrcPort, Value::Int(53)));
        let n = negate(&a);
        let store = Store::new();
        let dns = Packet::new().with(Field::SrcPort, 53);
        let web = Packet::new().with(Field::SrcPort, 80);
        assert!(n.evaluate(&dns, &store).unwrap().0.is_empty());
        assert_eq!(n.evaluate(&web, &store).unwrap().0.len(), 1);
        assert_eq!(negate(&Xfdd::id()), Xfdd::drop());
        assert_eq!(negate(&Xfdd::drop()), Xfdd::id());
    }

    #[test]
    fn restrict_keeps_only_matching_side() {
        let t = Test::FieldValue(Field::SrcPort, Value::Int(53));
        let d = leaf_action(Action::Modify(Field::OutPort, Value::Int(1)));
        let pos = restrict(&d, &t, true, &order());
        let neg = restrict(&d, &t, false, &order());
        let store = Store::new();
        let dns = Packet::new().with(Field::SrcPort, 53);
        let web = Packet::new().with(Field::SrcPort, 80);
        assert_eq!(pos.evaluate(&dns, &store).unwrap().0.len(), 1);
        assert!(pos.evaluate(&web, &store).unwrap().0.is_empty());
        assert!(neg.evaluate(&dns, &store).unwrap().0.is_empty());
        assert_eq!(neg.evaluate(&web, &store).unwrap().0.len(), 1);
    }

    #[test]
    fn make_branch_handles_out_of_order_tests() {
        // The branches contain a test that precedes the branch test in the
        // global order; make_branch must still build a well-formed diagram.
        let early = Test::FieldValue(Field::DstIp, Value::ip(1, 1, 1, 1));
        let late = Test::FieldValue(Field::SrcPort, Value::Int(53));
        let dt = test_branch(early.clone());
        let d = make_branch(late.clone(), dt, Xfdd::drop(), &order());
        assert!(d.is_well_formed(&order()));
        let store = Store::new();
        let yes = Packet::new()
            .with(Field::SrcPort, 53)
            .with(Field::DstIp, Value::ip(1, 1, 1, 1));
        let no = Packet::new()
            .with(Field::SrcPort, 80)
            .with(Field::DstIp, Value::ip(1, 1, 1, 1));
        assert_eq!(d.evaluate(&yes, &store).unwrap().0.len(), 1);
        assert!(d.evaluate(&no, &store).unwrap().0.is_empty());
    }

    #[test]
    fn seq_modification_then_test_is_resolved_statically() {
        // (outport <- 6) ; (outport = 6 ? id : drop)  ≡  outport <- 6
        let set = leaf_action(Action::Modify(Field::OutPort, Value::Int(6)));
        let check = test_branch(Test::FieldValue(Field::OutPort, Value::Int(6)));
        let d = seq(&set, &check, &order()).unwrap();
        assert!(d.is_well_formed(&order()));
        let store = Store::new();
        let pkt = Packet::new().with(Field::InPort, 1);
        let (pkts, _) = d.evaluate(&pkt, &store).unwrap();
        assert_eq!(pkts.len(), 1);
        // And against a different constant the packet is dropped.
        let check5 = test_branch(Test::FieldValue(Field::OutPort, Value::Int(5)));
        let d = seq(&set, &check5, &order()).unwrap();
        assert!(d.evaluate(&pkt, &store).unwrap().0.is_empty());
        // No residual test on outport should remain in either diagram.
        assert_eq!(d.num_tests(), 0);
    }

    #[test]
    fn seq_state_write_then_same_entry_test() {
        // s[srcip] <- 1 ; (s[srcip] = 1 ? id : drop) ≡ s[srcip] <- 1
        let w = leaf_action(Action::StateSet {
            var: sv("s"),
            index: vec![field(Field::SrcIp)],
            value: Expr::Value(Value::Int(1)),
        });
        let t = test_branch(Test::State {
            var: sv("s"),
            index: vec![field(Field::SrcIp)],
            value: Expr::Value(Value::Int(1)),
        });
        let d = seq(&w, &t, &order()).unwrap();
        // The state test must have been eliminated: the write decides it.
        assert_eq!(d.num_tests(), 0);
        let pkt = Packet::new().with(Field::SrcIp, Value::ip(9, 9, 9, 9));
        let (pkts, store) = d.evaluate(&pkt, &Store::new()).unwrap();
        assert_eq!(pkts.len(), 1);
        assert_eq!(store.get(&sv("s"), &[Value::ip(9, 9, 9, 9)]), Value::Int(1));
    }

    #[test]
    fn seq_state_write_different_field_needs_field_field_test() {
        // s[srcip] <- e ; (s[dstip] = e ? d1 : d2): whether the write decides
        // the test depends on srcip = dstip, so a field-field test appears.
        let w = leaf_action(Action::StateSet {
            var: sv("s"),
            index: vec![field(Field::SrcIp)],
            value: Expr::Value(Value::Int(1)),
        });
        let t = test_branch(Test::State {
            var: sv("s"),
            index: vec![field(Field::DstIp)],
            value: Expr::Value(Value::Int(1)),
        });
        let d = seq(&w, &t, &order()).unwrap();
        assert!(d.is_well_formed(&order()));
        let has_ff = d.paths().iter().any(|(path, _)| {
            path.iter()
                .any(|(t, _)| matches!(t, Test::FieldField(_, _)))
        });
        assert!(has_ff, "expected a field-field test in {d:?}");

        // Behaviour check against the obvious semantics.
        let store = Store::new();
        let same = Packet::new()
            .with(Field::SrcIp, Value::ip(1, 1, 1, 1))
            .with(Field::DstIp, Value::ip(1, 1, 1, 1));
        let diff = Packet::new()
            .with(Field::SrcIp, Value::ip(1, 1, 1, 1))
            .with(Field::DstIp, Value::ip(2, 2, 2, 2));
        // srcip = dstip: the write makes the test true -> pass.
        assert_eq!(d.evaluate(&same, &store).unwrap().0.len(), 1);
        // different: the test reads pre-existing state (0 ≠ 1) -> drop.
        assert!(d.evaluate(&diff, &store).unwrap().0.is_empty());
        // ... unless the pre-existing state already holds 1 at dstip.
        let mut seeded = Store::new();
        seeded.set(&sv("s"), vec![Value::ip(2, 2, 2, 2)], Value::Int(1));
        assert_eq!(d.evaluate(&diff, &seeded).unwrap().0.len(), 1);
    }

    #[test]
    fn seq_increment_then_constant_test_shifts_the_constant() {
        // c[srcip]++ ; (c[srcip] = 3 ? id : drop): equivalent to testing the
        // *pre*-increment value against 2.
        let inc = leaf_action(Action::StateIncr {
            var: sv("c"),
            index: vec![field(Field::SrcIp)],
        });
        let t = test_branch(Test::State {
            var: sv("c"),
            index: vec![field(Field::SrcIp)],
            value: Expr::Value(Value::Int(3)),
        });
        let d = seq(&inc, &t, &order()).unwrap();
        let pkt = Packet::new().with(Field::SrcIp, Value::ip(7, 7, 7, 7));
        let mut store = Store::new();
        store.set(&sv("c"), vec![Value::ip(7, 7, 7, 7)], Value::Int(2));
        let (pkts, new_store) = d.evaluate(&pkt, &store).unwrap();
        assert_eq!(pkts.len(), 1);
        assert_eq!(
            new_store.get(&sv("c"), &[Value::ip(7, 7, 7, 7)]),
            Value::Int(3)
        );
        // With a pre-state of 0 the packet is dropped (post-value 1 ≠ 3).
        let (pkts, _) = d.evaluate(&pkt, &Store::new()).unwrap();
        assert!(pkts.is_empty());
    }

    #[test]
    fn seq_increment_then_non_constant_test_is_rejected() {
        let inc = leaf_action(Action::StateIncr {
            var: sv("c"),
            index: vec![field(Field::SrcIp)],
        });
        let t = test_branch(Test::State {
            var: sv("c"),
            index: vec![field(Field::SrcIp)],
            value: Expr::Field(Field::DstPort),
        });
        let err = seq(&inc, &t, &order()).unwrap_err();
        assert!(matches!(err, CompileError::UnsupportedStateArithmetic { .. }));
    }

    #[test]
    fn seq_set_then_set_last_write_wins() {
        // s[0] <- 1; s[0] <- 2 ; (s[0] = 2 ? id : drop) keeps packets.
        let w = Xfdd::Leaf(Leaf::from_seq(ActionSeq::from_actions(vec![
            Action::StateSet {
                var: sv("s"),
                index: vec![Expr::Value(Value::Int(0))],
                value: Expr::Value(Value::Int(1)),
            },
            Action::StateSet {
                var: sv("s"),
                index: vec![Expr::Value(Value::Int(0))],
                value: Expr::Value(Value::Int(2)),
            },
        ])));
        let t = test_branch(Test::State {
            var: sv("s"),
            index: vec![Expr::Value(Value::Int(0))],
            value: Expr::Value(Value::Int(2)),
        });
        let d = seq(&w, &t, &order()).unwrap();
        assert_eq!(d.num_tests(), 0);
        let (pkts, _) = d.evaluate(&Packet::new(), &Store::new()).unwrap();
        assert_eq!(pkts.len(), 1);
    }

    #[test]
    fn seq_modified_field_in_write_index_uses_preceding_value() {
        // outport <- 6; s[outport] <- 1; (s[outport] = 1 ? id : drop):
        // the write and the test both see outport = 6, so the test is decided.
        let w = Xfdd::Leaf(Leaf::from_seq(ActionSeq::from_actions(vec![
            Action::Modify(Field::OutPort, Value::Int(6)),
            Action::StateSet {
                var: sv("s"),
                index: vec![field(Field::OutPort)],
                value: Expr::Value(Value::Int(1)),
            },
        ])));
        let t = test_branch(Test::State {
            var: sv("s"),
            index: vec![field(Field::OutPort)],
            value: Expr::Value(Value::Int(1)),
        });
        let d = seq(&w, &t, &order()).unwrap();
        assert_eq!(d.num_tests(), 0);
        let (pkts, _) = d.evaluate(&Packet::new(), &Store::new()).unwrap();
        assert_eq!(pkts.len(), 1);
    }

    #[test]
    fn seq_write_after_field_change_does_not_decide_pre_change_index() {
        // s[srcip] <- 1; srcip <- 9.9.9.9 ; (s[srcip] = 1 ? id : drop):
        // the test reads s at the *new* srcip (9.9.9.9), which the write (at
        // the old srcip) only decides if the old srcip was already 9.9.9.9.
        let w = Xfdd::Leaf(Leaf::from_seq(ActionSeq::from_actions(vec![
            Action::StateSet {
                var: sv("s"),
                index: vec![field(Field::SrcIp)],
                value: Expr::Value(Value::Int(1)),
            },
            Action::Modify(Field::SrcIp, Value::ip(9, 9, 9, 9)),
        ])));
        let t = test_branch(Test::State {
            var: sv("s"),
            index: vec![field(Field::SrcIp)],
            value: Expr::Value(Value::Int(1)),
        });
        let d = seq(&w, &t, &order()).unwrap();
        assert!(d.is_well_formed(&order()));
        let store = Store::new();
        // Old srcip is different from 9.9.9.9: write does not alias the read,
        // pre-state is 0, packet dropped.
        let other = Packet::new().with(Field::SrcIp, Value::ip(1, 1, 1, 1));
        assert!(d.evaluate(&other, &store).unwrap().0.is_empty());
        // Old srcip *is* 9.9.9.9: the write decides the test -> pass.
        let aliased = Packet::new().with(Field::SrcIp, Value::ip(9, 9, 9, 9));
        assert_eq!(d.evaluate(&aliased, &store).unwrap().0.len(), 1);
    }

    #[test]
    fn seq_through_branches_distributes() {
        // (srcport = 53 ? outport <- 1 : outport <- 2) ; (outport = 1 ? id : drop)
        let first = Xfdd::branch(
            Test::FieldValue(Field::SrcPort, Value::Int(53)),
            leaf_action(Action::Modify(Field::OutPort, Value::Int(1))),
            leaf_action(Action::Modify(Field::OutPort, Value::Int(2))),
        );
        let second = test_branch(Test::FieldValue(Field::OutPort, Value::Int(1)));
        let d = seq(&first, &second, &order()).unwrap();
        assert!(d.is_well_formed(&order()));
        let store = Store::new();
        let dns = Packet::new().with(Field::SrcPort, 53);
        let web = Packet::new().with(Field::SrcPort, 80);
        assert_eq!(d.evaluate(&dns, &store).unwrap().0.len(), 1);
        assert!(d.evaluate(&web, &store).unwrap().0.is_empty());
    }

    #[test]
    fn exprs_equal_basics() {
        let ctx = Context::new();
        assert!(matches!(
            exprs_equal(
                &[Expr::Value(Value::Int(1))],
                &[Expr::Value(Value::Int(1))],
                &ctx
            ),
            EqResult::Eq
        ));
        assert!(matches!(
            exprs_equal(
                &[Expr::Value(Value::Int(1))],
                &[Expr::Value(Value::Int(2))],
                &ctx
            ),
            EqResult::Neq
        ));
        assert!(matches!(
            exprs_equal(&[field(Field::SrcIp)], &[field(Field::SrcIp)], &ctx),
            EqResult::Eq
        ));
        assert!(matches!(
            exprs_equal(&[field(Field::SrcIp)], &[field(Field::DstIp)], &ctx),
            EqResult::Unknown(Test::FieldField(_, _))
        ));
        // Different lengths can never be equal.
        assert!(matches!(
            exprs_equal(&[field(Field::SrcIp)], &[], &ctx),
            EqResult::Neq
        ));
        // Tuples are flattened before comparison.
        assert!(matches!(
            exprs_equal(
                &[Expr::Tuple(vec![field(Field::SrcIp), Expr::Value(Value::Int(1))])],
                &[field(Field::SrcIp), Expr::Value(Value::Int(1))],
                &ctx
            ),
            EqResult::Eq
        ));
    }
}
