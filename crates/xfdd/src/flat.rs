//! Flat struct-of-arrays lowering of an xFDD for wire-speed evaluation —
//! the middle stage of the two-stage dataplane lowering (pool → flat →
//! tables).
//!
//! The interned arena ([`crate::Pool`]) is the right representation for
//! *building* diagrams — hash-consing, memo tables, GC — but per-packet
//! evaluation through it chases `Vec<Node>` entries holding clones of whole
//! tests and leaves, and a long-lived session arena interleaves the live
//! diagram with garbage from superseded compilations, so the reachable
//! subgraph is scattered across the allocation.
//!
//! A [`FlatProgram`] is the dataplane's canonical view: the reachable
//! subgraph of one root, renumbered densely child-first and split into
//! parallel arrays — branch tests, branch edges, and leaf action tables
//! each contiguous in memory. Per-packet evaluation is then index
//! arithmetic over a few dense arrays: follow an edge, load a test by the
//! same index, repeat. The dense [`FlatId`]s also replace the arena
//! [`NodeId`]s as the §4.5 packet-tag node identifiers carried in the SNAP
//! header, so a flattened program is all a switch needs to resume
//! processing mid-diagram.
//!
//! Each branch additionally caches the state variable its test reads (if
//! any): the distributed simulator checks ownership of that variable on
//! every hop, and the cache turns that from a match over the test structure
//! into an array load.
//!
//! ## The two-stage lowering, and which stage to use when
//!
//! 1. **Pool** ([`crate::Pool`]): building and composing diagrams —
//!    hash-consing, memoized `⊕`/`⊖`/`⊙`, deltas, GC. Never the per-packet
//!    path.
//! 2. **Flat** (this module): the portable program. Flat ids are the
//!    packet-tag wire format, leaves carry the executable action tables,
//!    and [`FlatProgram::walk`] is the reference per-packet semantics that
//!    everything else (netasm lowering, table dispatch) is checked against.
//! 3. **Tables** ([`crate::tables::TableProgram`]): a derived dispatch
//!    structure *over* the flat arrays — runs of same-field tests collapsed
//!    into per-field lookup tables, so the hot path resolves a whole chain
//!    with one field load and one probe. Compiled locally from the flat
//!    program wherever one is installed (never shipped: the wire format
//!    and the tags stay flat). Use it for the per-packet hot path; use
//!    `walk` when you need the one-test-per-step reference, e.g. in
//!    differential tests.

use crate::action::{Action, ActionSeq, Leaf};
use crate::pool::{eval_test, Node, NodeId, Pool};
use crate::test::Test;
use snap_lang::{EvalError, Expr, Packet, StateVar, Store, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Compile-time classification of a state variable's transitions, derived
/// from the flattened diagram's read set (branch tests) and write set (leaf
/// action sequences).
///
/// The dataplane uses this to decide how a variable's table may be sharded
/// across workers: a variable whose updates commute and which no branch ever
/// reads can be accumulated in per-worker replica buffers and merged on a
/// bounded cadence — the merged totals are exact because the updates are
/// order-independent and nothing on the packet path observes intermediate
/// values. Everything else needs the authoritative table (key-range locked)
/// on every access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StateClass {
    /// Every write is a `StateIncr`/`StateDecr` and no branch test reads the
    /// variable: increments commute, so per-worker deltas merged later give
    /// the exact total.
    Counter,
    /// Every write is a `StateSet` storing the *same literal* value and no
    /// branch test reads the variable: identical idempotent sets are
    /// order-independent, so deferred replica application is exact.
    IdempotentSet,
    /// Anything else — read by some test, written with computed values, or
    /// written with mixed/conflicting kinds. Needs exact read-modify-write
    /// on the authoritative (key-range sharded) table.
    Exact,
}

impl StateClass {
    /// May this variable's writes be buffered in per-worker replicas and
    /// merged later, instead of locking the authoritative table per write?
    pub fn is_replicable(self) -> bool {
        !matches!(self, StateClass::Exact)
    }
}

/// Dense identifier of a node in a [`FlatProgram`]: the top bit distinguishes
/// leaves from branches, the remainder indexes the respective array. Flat ids
/// double as the packet-tag node identifiers of §4.5 — every switch holds the
/// same flattened program, so an id minted on one switch resumes correctly on
/// another.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlatId(u32);

const LEAF_BIT: u32 = 1 << 31;

impl FlatId {
    /// Is this the id of a leaf?
    pub fn is_leaf(self) -> bool {
        self.0 & LEAF_BIT != 0
    }

    /// Index into the branch arrays (tests/edges). Panics on leaf ids —
    /// in every build: a leaf id used as a branch index would silently
    /// read an unrelated branch in release mode otherwise.
    pub fn branch_index(self) -> usize {
        assert!(!self.is_leaf(), "branch_index called on leaf id {self:?}");
        self.0 as usize
    }

    /// Index into the leaf array. Panics on branch ids — in every build,
    /// for the same reason as [`FlatId::branch_index`].
    pub fn leaf_index(self) -> usize {
        assert!(self.is_leaf(), "leaf_index called on branch id {self:?}");
        (self.0 & !LEAF_BIT) as usize
    }

    fn branch(i: usize) -> FlatId {
        let i = u32::try_from(i).expect("flat program branch overflow");
        assert!(i & LEAF_BIT == 0, "flat program branch overflow");
        FlatId(i)
    }

    fn leaf(i: usize) -> FlatId {
        let i = u32::try_from(i).expect("flat program leaf overflow");
        assert!(i & LEAF_BIT == 0, "flat program leaf overflow");
        FlatId(i | LEAF_BIT)
    }
}

impl fmt::Debug for FlatId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_leaf() {
            write!(f, "l{}", self.0 & !LEAF_BIT)
        } else {
            write!(f, "b{}", self.0)
        }
    }
}

/// A leaf of a flat program: the action sequences of the interned
/// [`Leaf`], laid out in a dense `Vec` (in the leaf's canonical set order)
/// so a resumed packet can index its sequence in O(1) instead of walking a
/// `BTreeSet`, plus facts precomputed at flatten time that the per-packet
/// path would otherwise rediscover on every application.
#[derive(Clone, Debug, PartialEq)]
pub struct FlatLeaf {
    /// The parallel action sequences, in the canonical (set) order of the
    /// source leaf.
    pub seqs: Vec<ActionSeq>,
    /// Does any sequence write a state variable? Precomputed so the
    /// (common) stateless leaf skips per-sequence store cloning and the
    /// store merge entirely.
    writes_state: bool,
}

impl FlatLeaf {
    fn from_leaf(leaf: &Leaf) -> FlatLeaf {
        let seqs: Vec<ActionSeq> = leaf.0.iter().cloned().collect();
        let writes_state = seqs
            .iter()
            .any(|s| s.actions.iter().any(|a| a.written_var().is_some()));
        FlatLeaf { seqs, writes_state }
    }

    /// Does this leaf drop every packet with no side effect?
    pub fn is_drop(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Does any sequence of this leaf write a state variable?
    pub fn writes_state(&self) -> bool {
        self.writes_state
    }

    /// Apply the leaf with one-big-switch semantics: every sequence runs on
    /// the same input store, output packets are unioned and store changes
    /// merged (identical to [`Leaf::apply`]).
    pub fn apply(
        &self,
        pkt: &Packet,
        store: &Store,
    ) -> Result<(BTreeSet<Packet>, Store), EvalError> {
        if !self.writes_state {
            // Stateless leaf: only `Modify` actions, which cannot fail and
            // cannot touch the store — no per-sequence store clones, no
            // merge.
            let mut packets = BTreeSet::new();
            for seq in &self.seqs {
                if seq.drops {
                    continue;
                }
                let mut p = pkt.clone();
                for a in &seq.actions {
                    if let crate::action::Action::Modify(f, v) = a {
                        p.set(f.clone(), v.clone());
                    }
                }
                packets.insert(p);
            }
            return Ok((packets, store.clone()));
        }
        let mut packets = BTreeSet::new();
        let mut stores = Vec::with_capacity(self.seqs.len());
        for seq in &self.seqs {
            let (p, s) = seq.apply(pkt, store)?;
            if let Some(p) = p {
                packets.insert(p);
            }
            stores.push(s);
        }
        let merged = Store::merge(store, &stores);
        Ok((packets, merged))
    }
}

/// One flat node, borrowed from the program's arrays.
#[derive(Clone, Copy, Debug)]
pub enum FlatNode<'a> {
    /// A branch: evaluate `test` and continue at `tru` or `fls`.
    Branch {
        /// The test at this node.
        test: &'a Test,
        /// The state variable the test reads, if any (cached off the test).
        var: Option<&'a StateVar>,
        /// Successor when the test passes.
        tru: FlatId,
        /// Successor when the test fails.
        fls: FlatId,
    },
    /// A leaf: apply its action sequences.
    Leaf(&'a FlatLeaf),
}

/// The reachable subgraph of one diagram root, compiled into dense parallel
/// arrays for per-packet evaluation (see the module docs).
#[derive(Clone, Debug)]
pub struct FlatProgram {
    /// Branch tests, one per branch node.
    tests: Vec<Test>,
    /// The state variable read by each test (parallel to `tests`), cached so
    /// the ownership check of the distributed simulator is an array load.
    test_vars: Vec<Option<StateVar>>,
    /// Branch successors `[tru, fls]`, parallel to `tests`.
    edges: Vec<[FlatId; 2]>,
    /// Leaf action tables.
    leaves: Vec<FlatLeaf>,
    /// Entry node.
    root: FlatId,
    /// Per-variable transition classification (see [`StateClass`]),
    /// computed once at flatten time from the read set (`test_vars`) and
    /// the write kinds in the leaves.
    classes: BTreeMap<StateVar, StateClass>,
}

impl FlatProgram {
    /// Flatten the subgraph reachable from `root`.
    ///
    /// The arena interns children before parents (ids strictly decrease from
    /// parent to child), so walking the reachable set in ascending arena
    /// order assigns dense, child-first flat ids with every child already
    /// numbered when its parent is visited.
    pub fn from_pool(pool: &Pool, root: NodeId) -> FlatProgram {
        let mut ids = pool.reachable(root);
        ids.sort_unstable();
        let mut flat_of = vec![FlatId(u32::MAX); ids.last().map_or(0, |n| n.index() + 1)];
        let mut out = FlatProgram {
            tests: Vec::new(),
            test_vars: Vec::new(),
            edges: Vec::new(),
            leaves: Vec::new(),
            root: FlatId(0),
            classes: BTreeMap::new(),
        };
        for id in ids {
            let flat = match pool.node(id) {
                Node::Leaf(leaf) => {
                    out.leaves.push(FlatLeaf::from_leaf(leaf));
                    FlatId::leaf(out.leaves.len() - 1)
                }
                Node::Branch { test, tru, fls } => {
                    out.tests.push(test.clone());
                    out.test_vars.push(test.state_var().cloned());
                    out.edges.push([flat_of[tru.index()], flat_of[fls.index()]]);
                    FlatId::branch(out.tests.len() - 1)
                }
            };
            flat_of[id.index()] = flat;
        }
        out.root = flat_of[root.index()];
        out.classes = out.classify_state();
        out
    }

    /// Classify every written variable by write kind, then demote anything
    /// a branch test reads to [`StateClass::Exact`]: replication is only
    /// sound when the packet path never observes intermediate values, and a
    /// state test is exactly such an observation.
    fn classify_state(&self) -> BTreeMap<StateVar, StateClass> {
        let mut classes: BTreeMap<StateVar, StateClass> = BTreeMap::new();
        for leaf in &self.leaves {
            for seq in &leaf.seqs {
                for action in &seq.actions {
                    let (var, kind) = match action {
                        Action::Modify(_, _) => continue,
                        Action::StateIncr { var, .. } | Action::StateDecr { var, .. } => {
                            (var, StateClass::Counter)
                        }
                        Action::StateSet {
                            var,
                            value: Expr::Value(_),
                            ..
                        } => (var, StateClass::IdempotentSet),
                        Action::StateSet { var, .. } => (var, StateClass::Exact),
                    };
                    classes
                        .entry(var.clone())
                        .and_modify(|c| {
                            if *c != kind {
                                // Mixed write kinds (incr + set, or sets of
                                // differing shape) do not commute.
                                *c = StateClass::Exact;
                            }
                        })
                        .or_insert(kind);
                }
            }
        }
        // Sets are only idempotent if every set stores the *same* literal;
        // two seqs writing different literals would be order-dependent.
        let mut set_literal: BTreeMap<&StateVar, &Value> = BTreeMap::new();
        for leaf in &self.leaves {
            for seq in &leaf.seqs {
                for action in &seq.actions {
                    if let Action::StateSet {
                        var,
                        value: Expr::Value(v),
                        ..
                    } = action
                    {
                        if classes.get(var) == Some(&StateClass::IdempotentSet) {
                            match set_literal.get(var) {
                                None => {
                                    set_literal.insert(var, v);
                                }
                                Some(seen) if *seen != v => {
                                    classes.insert(var.clone(), StateClass::Exact);
                                }
                                Some(_) => {}
                            }
                        }
                    }
                }
            }
        }
        for var in self.test_vars.iter().flatten() {
            classes.insert(var.clone(), StateClass::Exact);
        }
        classes
    }

    /// The classification of `var`'s transitions in this program.
    /// Unknown variables are [`StateClass::Exact`] — the conservative
    /// answer for tables installed out-of-band (e.g. hand-seeded in tests).
    pub fn state_class(&self, var: &StateVar) -> StateClass {
        self.classes.get(var).copied().unwrap_or(StateClass::Exact)
    }

    /// All classified variables and their classes.
    pub fn state_classes(&self) -> &BTreeMap<StateVar, StateClass> {
        &self.classes
    }

    /// The entry node.
    pub fn root(&self) -> FlatId {
        self.root
    }

    /// Number of branch nodes.
    pub fn num_branches(&self) -> usize {
        self.tests.len()
    }

    /// Number of leaf nodes.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Total number of nodes (equals the arena size of the source diagram).
    pub fn num_nodes(&self) -> usize {
        self.tests.len() + self.leaves.len()
    }

    /// The id of the `i`-th branch (for iterating the branch arrays).
    pub fn branch_id(&self, i: usize) -> FlatId {
        assert!(i < self.tests.len());
        FlatId::branch(i)
    }

    /// The id of the `i`-th leaf (for iterating the leaf array).
    pub fn leaf_id(&self, i: usize) -> FlatId {
        assert!(i < self.leaves.len());
        FlatId::leaf(i)
    }

    /// Borrow a node by id.
    #[inline]
    pub fn node(&self, id: FlatId) -> FlatNode<'_> {
        if id.is_leaf() {
            FlatNode::Leaf(&self.leaves[id.leaf_index()])
        } else {
            let i = id.branch_index();
            let [tru, fls] = self.edges[i];
            FlatNode::Branch {
                test: &self.tests[i],
                var: self.test_vars[i].as_ref(),
                tru,
                fls,
            }
        }
    }

    /// The leaf behind a leaf id.
    #[inline]
    pub fn leaf(&self, id: FlatId) -> &FlatLeaf {
        &self.leaves[id.leaf_index()]
    }

    /// The state variable read by a branch's test, if any.
    #[inline]
    pub fn branch_var(&self, id: FlatId) -> Option<&StateVar> {
        self.test_vars[id.branch_index()].as_ref()
    }

    /// Walk tests from `from` to a leaf for one packet: the hot path of the
    /// dataplane. Pure index arithmetic over the dense arrays.
    #[inline]
    pub fn walk(&self, from: FlatId, pkt: &Packet, store: &Store) -> Result<FlatId, EvalError> {
        let mut cur = from;
        while !cur.is_leaf() {
            let i = cur.branch_index();
            let [tru, fls] = self.edges[i];
            cur = if eval_test(&self.tests[i], pkt, store)? {
                tru
            } else {
                fls
            };
        }
        Ok(cur)
    }

    /// Run the program on a packet and store with one-big-switch semantics:
    /// walk tests to a leaf, then apply the leaf's action sequences.
    /// Semantically identical to [`Pool::evaluate`] on the source diagram.
    pub fn evaluate(
        &self,
        pkt: &Packet,
        store: &Store,
    ) -> Result<(BTreeSet<Packet>, Store), EvalError> {
        let leaf = self.walk(self.root, pkt, store)?;
        self.leaves[leaf.leaf_index()].apply(pkt, store)
    }

    /// All state variables referenced anywhere in the program (tests and
    /// leaf actions).
    pub fn state_vars(&self) -> BTreeSet<StateVar> {
        let mut out: BTreeSet<StateVar> = self.test_vars.iter().flatten().cloned().collect();
        for leaf in &self.leaves {
            for seq in &leaf.seqs {
                out.extend(seq.written_vars());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::test::VarOrder;
    use crate::translate::to_xfdd;
    use snap_lang::builder::*;
    use snap_lang::{Field, Value};

    fn flatten(policy: &snap_lang::Policy) -> (Pool, NodeId, FlatProgram) {
        let deps = crate::deps::StateDependencies::analyze(policy);
        let mut pool = Pool::new(deps.var_order());
        let root = to_xfdd(policy, &mut pool).unwrap();
        let flat = FlatProgram::from_pool(&pool, root);
        (pool, root, flat)
    }

    #[test]
    fn flat_ids_are_dense_and_child_first() {
        let policy = ite(
            test(Field::SrcPort, Value::Int(53)),
            state_incr("dns", vec![field(Field::DstIp)]),
            ite(
                test(Field::DstPort, Value::Int(80)),
                modify(Field::OutPort, Value::Int(1)),
                drop(),
            ),
        );
        let (pool, root, flat) = flatten(&policy);
        assert_eq!(flat.num_nodes(), pool.size(root));
        assert_eq!(flat.num_branches(), pool.num_tests(root));
        // Every branch's successors carry strictly smaller per-kind indices
        // or point at leaves that exist — i.e. ids are dense and resolvable.
        for b in 0..flat.num_branches() {
            let id = FlatId::branch(b);
            if let FlatNode::Branch { tru, fls, .. } = flat.node(id) {
                for child in [tru, fls] {
                    if child.is_leaf() {
                        assert!(child.leaf_index() < flat.num_leaves());
                    } else {
                        assert!(child.branch_index() < b, "children are numbered first");
                    }
                }
            }
        }
    }

    #[test]
    fn flat_evaluation_matches_pool_evaluation() {
        let policy = ite(
            test(Field::SrcPort, Value::Int(53)),
            state_incr("dns", vec![field(Field::DstIp)]).seq(modify(Field::OutPort, Value::Int(6))),
            ite(
                state_test("dns", vec![field(Field::SrcIp)], int(2)),
                drop(),
                modify(Field::OutPort, Value::Int(1)),
            ),
        );
        let (pool, root, flat) = flatten(&policy);
        let mut store_pool = Store::new();
        let mut store_flat = Store::new();
        for i in 0..8i64 {
            let pkt = Packet::new()
                .with(Field::SrcPort, if i % 2 == 0 { 53 } else { 80 })
                .with(Field::SrcIp, Value::ip(10, 0, 0, (i % 3) as u8))
                .with(Field::DstIp, Value::ip(10, 0, 0, (i % 3) as u8));
            let (pa, sa) = pool.evaluate(root, &pkt, &store_pool).unwrap();
            let (pb, sb) = flat.evaluate(&pkt, &store_flat).unwrap();
            assert_eq!(pa, pb, "packet {i}");
            assert_eq!(sa, sb, "store {i}");
            store_pool = sa;
            store_flat = sb;
        }
    }

    #[test]
    fn parallel_leaves_keep_their_sequences() {
        let policy =
            modify(Field::OutPort, Value::Int(1)).par(modify(Field::OutPort, Value::Int(2)));
        let (pool, root, flat) = flatten(&policy);
        let pkt = Packet::new().with(Field::InPort, 9);
        let (a, _) = pool.evaluate(root, &pkt, &Store::new()).unwrap();
        let (b, _) = flat.evaluate(&pkt, &Store::new()).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a, b);
        // The leaf's sequences are indexable in canonical order.
        let leaf = flat.leaf(flat.root());
        assert_eq!(leaf.seqs.len(), 2);
    }

    #[test]
    fn state_vars_and_branch_var_cache() {
        let policy = ite(
            state_test("seen", vec![field(Field::SrcIp)], int(1)),
            state_incr("hits", vec![field(Field::SrcIp)]),
            drop(),
        );
        let (_, _, flat) = flatten(&policy);
        let vars = flat.state_vars();
        assert!(vars.contains(&"seen".into()));
        assert!(vars.contains(&"hits".into()));
        // The root is the state test; its cached variable matches.
        assert_eq!(
            flat.branch_var(flat.root()).map(|v| v.name().to_string()),
            Some("seen".to_string())
        );
    }

    #[test]
    #[should_panic(expected = "branch_index called on leaf id")]
    fn branch_index_panics_on_leaf_ids_in_release_too() {
        FlatId::leaf(0).branch_index();
    }

    #[test]
    #[should_panic(expected = "leaf_index called on branch id")]
    fn leaf_index_panics_on_branch_ids_in_release_too() {
        FlatId::branch(0).leaf_index();
    }

    #[test]
    fn state_classes_counter_and_exact() {
        // `dns` is only ever incremented and never tested: Counter.
        // `seen` is tested: Exact, even though its only write is a set.
        let policy = ite(
            test(Field::SrcPort, Value::Int(53)),
            state_incr("dns", vec![field(Field::DstIp)]),
            ite(
                state_test("seen", vec![field(Field::SrcIp)], int(1)),
                state_set("seen", vec![field(Field::SrcIp)], int(1)),
                drop(),
            ),
        );
        let (_, _, flat) = flatten(&policy);
        assert_eq!(flat.state_class(&"dns".into()), StateClass::Counter);
        assert!(flat.state_class(&"dns".into()).is_replicable());
        assert_eq!(flat.state_class(&"seen".into()), StateClass::Exact);
        // Unknown variables are conservatively Exact.
        assert_eq!(flat.state_class(&"nope".into()), StateClass::Exact);
        assert_eq!(flat.state_classes().len(), 2);
    }

    #[test]
    fn state_classes_idempotent_set_requires_one_literal() {
        // A flag set to the same literal everywhere and never tested is an
        // idempotent set.
        let policy = ite(
            test(Field::SrcPort, Value::Int(53)),
            state_set("flag", vec![field(Field::InPort)], int(1)),
            state_set("flag", vec![field(Field::DstPort)], int(1)),
        );
        let (_, _, flat) = flatten(&policy);
        assert_eq!(flat.state_class(&"flag".into()), StateClass::IdempotentSet);

        // Different literals on different branches: order-dependent, Exact.
        let policy = ite(
            test(Field::SrcPort, Value::Int(53)),
            state_set("flag", vec![field(Field::InPort)], int(1)),
            state_set("flag", vec![field(Field::InPort)], int(2)),
        );
        let (_, _, flat) = flatten(&policy);
        assert_eq!(flat.state_class(&"flag".into()), StateClass::Exact);

        // A computed value is never idempotent.
        let policy = state_set("flag", vec![field(Field::InPort)], field(Field::SrcPort));
        let (_, _, flat) = flatten(&policy);
        assert_eq!(flat.state_class(&"flag".into()), StateClass::Exact);
    }

    #[test]
    fn state_classes_mixed_write_kinds_are_exact() {
        let policy = ite(
            test(Field::SrcPort, Value::Int(53)),
            state_incr("c", vec![field(Field::InPort)]),
            state_set("c", vec![field(Field::InPort)], int(0)),
        );
        let (_, _, flat) = flatten(&policy);
        assert_eq!(flat.state_class(&"c".into()), StateClass::Exact);
        assert!(!flat.state_class(&"c".into()).is_replicable());
    }

    #[test]
    fn single_leaf_program_flattens() {
        let mut pool = Pool::new(VarOrder::empty());
        let leaf = pool.leaf(Leaf::single(Action::Modify(Field::OutPort, Value::Int(3))));
        let flat = FlatProgram::from_pool(&pool, leaf);
        assert_eq!(flat.num_nodes(), 1);
        assert!(flat.root().is_leaf());
        let (pkts, _) = flat.evaluate(&Packet::new(), &Store::new()).unwrap();
        assert_eq!(pkts.len(), 1);
    }
}
