//! Property-based equivalence of the table-compiled program with the flat
//! program it was lowered from: for random policies, packets and stores,
//! [`TableProgram`] evaluation agrees with [`FlatProgram::walk`] /
//! [`FlatProgram::evaluate`] — including state tests, drop leaves and, most
//! importantly, walks that *start mid-run*: a §4.5 packet tag can name any
//! branch of a collapsed field-test chain, and the table's `min_pos` resume
//! must behave exactly like stepping the original branches one by one.
//!
//! The CI bench/equivalence gate greps for `tables_equiv` in the test list;
//! renaming this file requires updating `.github/workflows/ci.yml`.

use proptest::prelude::*;
use snap_lang::{Expr, Field, Packet, Policy, Pred, StateVar, Store, Value};
use snap_xfdd::{FlatNode, TableProgram};

const FIELDS: [Field; 5] = [
    Field::SrcIp,
    Field::DstIp,
    Field::SrcPort,
    Field::DstPort,
    Field::InPort,
];

// Wider key ranges than the semantics-equivalence suite: table compilation
// branches on key *shape* (dense vs sparse ints, prefixes vs exact ips), so
// the generator mixes dense small ints, sparse ints, ips and prefixes to
// reach every `Lookup` kind.
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0i64..8).prop_map(Value::Int),
        (0i64..10_000).prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        (0u8..6).prop_map(|d| Value::ip(10, 0, 0, d)),
        (0u8..4, 8u8..=24).prop_map(|(d, len)| Value::prefix(10, d, 0, 0, len)),
    ]
}

fn arb_packet_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0i64..8).prop_map(Value::Int),
        (0i64..10_000).prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        (0u8..4, 0u8..6).prop_map(|(b, d)| Value::ip(10, b, 0, d)),
    ]
}

fn arb_field() -> impl Strategy<Value = Field> {
    (0usize..FIELDS.len()).prop_map(|i| FIELDS[i].clone())
}

fn arb_state_var() -> impl Strategy<Value = StateVar> {
    prop_oneof![
        Just(StateVar::new("s")),
        Just(StateVar::new("t")),
        Just(StateVar::new("u"))
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        arb_field().prop_map(Expr::Field),
        arb_value().prop_map(Expr::Value),
    ]
}

fn arb_index() -> impl Strategy<Value = Vec<Expr>> {
    proptest::collection::vec(arb_expr(), 1..=2)
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    let leaf = prop_oneof![
        Just(Pred::Id),
        Just(Pred::Drop),
        (arb_field(), arb_value()).prop_map(|(f, v)| Pred::Test(f, v)),
        (arb_state_var(), arb_index(), arb_expr())
            .prop_map(|(var, index, value)| Pred::StateTest { var, index, value }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|x| Pred::Not(Box::new(x))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Pred::And(Box::new(x), Box::new(y))),
            (inner.clone(), inner).prop_map(|(x, y)| Pred::Or(Box::new(x), Box::new(y))),
        ]
    })
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    let leaf = prop_oneof![
        arb_pred().prop_map(Policy::Filter),
        (arb_field(), arb_value()).prop_map(|(f, v)| Policy::Modify(f, v)),
        (arb_state_var(), arb_index(), arb_expr())
            .prop_map(|(var, index, value)| Policy::StateSet { var, index, value }),
        (arb_state_var(), arb_index()).prop_map(|(var, index)| Policy::StateIncr { var, index }),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(p, q)| p.seq(q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| p.par(q)),
            (arb_pred(), inner.clone(), inner.clone()).prop_map(|(a, p, q)| Policy::If(
                a,
                Box::new(p),
                Box::new(q)
            )),
        ]
    })
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    proptest::collection::vec(arb_packet_value(), FIELDS.len())
        .prop_map(|vals| FIELDS.iter().cloned().zip(vals).collect::<Packet>())
}

fn arb_store() -> impl Strategy<Value = Store> {
    proptest::collection::vec(
        (
            arb_state_var(),
            proptest::collection::vec(arb_packet_value(), 1..=2),
            (0i64..4).prop_map(Value::Int),
        ),
        0..4,
    )
    .prop_map(|entries| {
        let mut store = Store::new();
        for (var, idx, val) in entries {
            store.set(&var, idx, val);
        }
        store
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]

    // Full evaluation (walk to a leaf + leaf application) agrees between
    // the table program and the flat program it compiled from, errors
    // included.
    #[test]
    fn table_evaluation_matches_flat_evaluation(
        policy in arb_policy(),
        packet in arb_packet(),
        store in arb_store(),
    ) {
        let diagram = match snap_xfdd::compile(&policy) {
            Ok(d) => d,
            Err(_) => return Ok(()), // rejected programs have nothing to compare
        };
        let flat = diagram.flatten();
        let tables = TableProgram::compile(&flat);
        let via_flat = flat.evaluate(&packet, &store);
        let via_tables = tables.evaluate(&flat, &packet, &store);
        prop_assert_eq!(via_flat, via_tables, "evaluation diverged for {:?}", policy);
    }

    // The walk agrees from *every* branch node, not just the root: packet
    // tags resume mid-program, and a tag may land in the middle of a
    // collapsed same-field run (the `min_pos` machinery).
    #[test]
    fn table_walk_matches_flat_walk_from_every_branch(
        policy in arb_policy(),
        packet in arb_packet(),
        store in arb_store(),
    ) {
        let diagram = match snap_xfdd::compile(&policy) {
            Ok(d) => d,
            Err(_) => return Ok(()),
        };
        let flat = diagram.flatten();
        let tables = TableProgram::compile(&flat);
        for i in 0..flat.num_branches() {
            let from = flat.branch_id(i);
            let via_flat = flat.walk(from, &packet, &store);
            let via_tables = tables.walk(&flat, from, &packet, &store);
            prop_assert_eq!(
                &via_flat, &via_tables,
                "walk from branch {} diverged for {:?}", i, policy
            );
        }
    }

    // The lock-free prefix step is sound: `advance_stateless` never moves
    // past a state test, and finishing the walk statefully from wherever
    // it stopped reaches the same leaf as a plain stateful walk.
    #[test]
    fn stateless_prefix_then_stateful_suffix_reaches_the_same_leaf(
        policy in arb_policy(),
        packet in arb_packet(),
        store in arb_store(),
    ) {
        let diagram = match snap_xfdd::compile(&policy) {
            Ok(d) => d,
            Err(_) => return Ok(()),
        };
        let flat = diagram.flatten();
        let tables = TableProgram::compile(&flat);
        for i in 0..flat.num_branches() {
            let from = flat.branch_id(i);
            let stop = tables.advance_stateless(&flat, from, &packet);
            if let FlatNode::Branch { test, .. } = flat.node(stop) {
                prop_assert!(
                    matches!(test, snap_xfdd::Test::State { .. }),
                    "stateless advance stopped at a stateless test for {:?}", policy
                );
            }
            let resumed = flat.walk(stop, &packet, &store);
            let direct = flat.walk(from, &packet, &store);
            prop_assert_eq!(
                &resumed, &direct,
                "prefix+suffix from branch {} diverged for {:?}", i, policy
            );
        }
    }
}
