//! Property-based tests for pool compaction and the wire format: for random
//! programs, `Pool::compact` must preserve the semantics of every surviving
//! diagram, never grow the arena, and leave the interners consistent; the
//! wire format must round-trip diagrams bit-exactly in structure.

use proptest::prelude::*;
use snap_lang::{Expr, Field, Packet, Policy, Pred, StateVar, Store, Value};
use snap_xfdd::{to_xfdd, Node, Pool, StateDependencies};

const FIELDS: [Field; 5] = [
    Field::SrcIp,
    Field::DstIp,
    Field::SrcPort,
    Field::DstPort,
    Field::InPort,
];

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0i64..4).prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        (0u8..3).prop_map(|d| Value::ip(10, 0, 0, d)),
    ]
}

fn arb_field() -> impl Strategy<Value = Field> {
    (0usize..FIELDS.len()).prop_map(|i| FIELDS[i].clone())
}

fn arb_state_var() -> impl Strategy<Value = StateVar> {
    prop_oneof![
        Just(StateVar::new("s")),
        Just(StateVar::new("t")),
        Just(StateVar::new("u"))
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        arb_field().prop_map(Expr::Field),
        arb_value().prop_map(Expr::Value),
    ]
}

fn arb_index() -> impl Strategy<Value = Vec<Expr>> {
    proptest::collection::vec(arb_expr(), 1..=2)
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    let leaf = prop_oneof![
        Just(Pred::Id),
        Just(Pred::Drop),
        (arb_field(), arb_value()).prop_map(|(f, v)| Pred::Test(f, v)),
        (arb_state_var(), arb_index(), arb_expr())
            .prop_map(|(var, index, value)| { Pred::StateTest { var, index, value } }),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|x| Pred::Not(Box::new(x))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Pred::And(Box::new(x), Box::new(y))),
            (inner.clone(), inner).prop_map(|(x, y)| Pred::Or(Box::new(x), Box::new(y))),
        ]
    })
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    let leaf = prop_oneof![
        arb_pred().prop_map(Policy::Filter),
        (arb_field(), arb_value()).prop_map(|(f, v)| Policy::Modify(f, v)),
        (arb_state_var(), arb_index(), arb_expr())
            .prop_map(|(var, index, value)| { Policy::StateSet { var, index, value } }),
        (arb_state_var(), arb_index()).prop_map(|(var, index)| Policy::StateIncr { var, index }),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(p, q)| p.seq(q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| p.par(q)),
            (arb_pred(), inner.clone(), inner.clone()).prop_map(|(a, p, q)| Policy::If(
                a,
                Box::new(p),
                Box::new(q)
            )),
        ]
    })
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    proptest::collection::vec(arb_value(), FIELDS.len())
        .prop_map(|vals| FIELDS.iter().cloned().zip(vals).collect::<Packet>())
}

fn arb_store() -> impl Strategy<Value = Store> {
    proptest::collection::vec(
        (
            arb_state_var(),
            proptest::collection::vec(arb_value(), 1..=2),
            (0i64..4).prop_map(Value::Int),
        ),
        0..4,
    )
    .prop_map(|entries| {
        let mut store = Store::new();
        for (var, idx, val) in entries {
            store.set(&var, idx, val);
        }
        store
    })
}

/// Translate both policies into one pool (sharing nodes and warming the memo
/// tables, like an incremental session would), keep only the second.
fn two_policy_pool(keep: &Policy, dead: &Policy) -> Option<(Pool, snap_xfdd::NodeId)> {
    let combined = dead.clone().par(keep.clone());
    let deps = StateDependencies::analyze(&combined);
    let mut pool = Pool::new(deps.var_order());
    to_xfdd(dead, &mut pool).ok()?;
    let root = to_xfdd(keep, &mut pool).ok()?;
    Some((pool, root))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compact_preserves_evaluation_and_never_grows(
        keep in arb_policy(),
        dead in arb_policy(),
        packet in arb_packet(),
        store in arb_store(),
    ) {
        let (mut pool, root) = match two_policy_pool(&keep, &dead) {
            Some(x) => x,
            None => return Ok(()),
        };
        let before_len = pool.len();
        let before_size = pool.size(root);
        let reference = pool.evaluate(root, &packet, &store);

        let remap = pool.compact(&[root]);
        let root2 = remap.node(root).expect("root must survive its own GC");

        prop_assert!(pool.len() <= before_len, "compaction grew the pool");
        prop_assert_eq!(remap.nodes_reclaimed(), before_len - pool.len());
        prop_assert_eq!(pool.size(root2), before_size, "diagram changed size");
        prop_assert!(pool.is_well_formed(root2));

        let after = pool.evaluate(root2, &packet, &store);
        match (reference, after) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "evaluation changed after compact"),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "evaluation outcome changed: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn compacted_pool_reinterns_live_nodes_to_identical_ids(
        keep in arb_policy(),
        dead in arb_policy(),
    ) {
        let (mut pool, root) = match two_policy_pool(&keep, &dead) {
            Some(x) => x,
            None => return Ok(()),
        };
        let remap = pool.compact(&[root]);
        let root2 = remap.node(root).unwrap();
        let len = pool.len();
        // Re-interning every surviving node must be a no-op: identical ids,
        // identical structure, no growth.
        for id in pool.reachable(root2) {
            match pool.node(id).clone() {
                Node::Leaf(l) => prop_assert_eq!(pool.leaf(l), id),
                Node::Branch { test, tru, fls } => {
                    prop_assert_eq!(pool.branch(test, tru, fls), id)
                }
            }
        }
        prop_assert_eq!(pool.len(), len, "re-interning grew the compacted pool");
    }

    #[test]
    fn retranslation_after_compact_matches_the_remapped_root(
        keep in arb_policy(),
        dead in arb_policy(),
    ) {
        let (mut pool, root) = match two_policy_pool(&keep, &dead) {
            Some(x) => x,
            None => return Ok(()),
        };
        let remap = pool.compact(&[root]);
        let root2 = remap.node(root).unwrap();
        // Translating the surviving policy again must re-derive the same
        // interned diagram (intermediates may be rebuilt, the root may not
        // move).
        let again = to_xfdd(&keep, &mut pool).expect("policy compiled before");
        prop_assert_eq!(again, root2);
    }

    #[test]
    fn wire_roundtrip_is_structure_exact(policy in arb_policy()) {
        let deps = StateDependencies::analyze(&policy);
        let mut pool = Pool::new(deps.var_order());
        let root = match to_xfdd(&policy, &mut pool) {
            Ok(r) => r,
            Err(_) => return Ok(()),
        };
        let bytes = snap_xfdd::encode_diagram(&pool, root);
        let (decoded, droot) = snap_xfdd::decode_diagram(&bytes).expect("roundtrip decode");
        prop_assert_eq!(decoded.order(), pool.order());
        prop_assert_eq!(decoded.size(droot), pool.size(root));
        prop_assert_eq!(decoded.debug(droot), pool.debug(root));
        // Decoding back into the original pool re-interns onto the root.
        let len = pool.len();
        let again = snap_xfdd::decode_into(&bytes, &mut pool).expect("decode into source pool");
        prop_assert_eq!(again, root);
        prop_assert_eq!(pool.len(), len);
    }
}
