//! Property-based equivalence of the xFDD translation with the formal
//! semantics: for random programs, stores and packets,
//! `eval(p, store, pkt)` and `to_xfdd(p).evaluate(pkt, store)` produce the
//! same output packets and the same final state.
//!
//! Programs that the compiler rejects (races, unsupported state arithmetic)
//! or whose evaluation is undefined (conflicting compositions) are skipped —
//! they have no semantics to compare.

use proptest::prelude::*;
use snap_lang::eval::eval;
use snap_lang::{Expr, Field, Packet, Policy, Pred, StateVar, Store, Value};
use snap_xfdd::StateDependencies;

const FIELDS: [Field; 5] = [
    Field::SrcIp,
    Field::DstIp,
    Field::SrcPort,
    Field::DstPort,
    Field::InPort,
];

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0i64..4).prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        (0u8..3).prop_map(|d| Value::ip(10, 0, 0, d)),
    ]
}

fn arb_int_value() -> impl Strategy<Value = Value> {
    (0i64..4).prop_map(Value::Int)
}

fn arb_field() -> impl Strategy<Value = Field> {
    (0usize..FIELDS.len()).prop_map(|i| FIELDS[i].clone())
}

fn arb_state_var() -> impl Strategy<Value = StateVar> {
    prop_oneof![
        Just(StateVar::new("s")),
        Just(StateVar::new("t")),
        Just(StateVar::new("u"))
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        arb_field().prop_map(Expr::Field),
        arb_value().prop_map(Expr::Value),
    ]
}

fn arb_index() -> impl Strategy<Value = Vec<Expr>> {
    proptest::collection::vec(arb_expr(), 1..=2)
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    let leaf = prop_oneof![
        Just(Pred::Id),
        Just(Pred::Drop),
        (arb_field(), arb_value()).prop_map(|(f, v)| Pred::Test(f, v)),
        (arb_state_var(), arb_index(), arb_expr())
            .prop_map(|(var, index, value)| { Pred::StateTest { var, index, value } }),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|x| Pred::Not(Box::new(x))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Pred::And(Box::new(x), Box::new(y))),
            (inner.clone(), inner).prop_map(|(x, y)| Pred::Or(Box::new(x), Box::new(y))),
        ]
    })
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    let leaf = prop_oneof![
        arb_pred().prop_map(Policy::Filter),
        (arb_field(), arb_value()).prop_map(|(f, v)| Policy::Modify(f, v)),
        (arb_state_var(), arb_index(), arb_expr())
            .prop_map(|(var, index, value)| { Policy::StateSet { var, index, value } }),
        (arb_state_var(), arb_index()).prop_map(|(var, index)| Policy::StateIncr { var, index }),
        (arb_state_var(), arb_index()).prop_map(|(var, index)| Policy::StateDecr { var, index }),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(p, q)| p.seq(q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| p.par(q)),
            (arb_pred(), inner.clone(), inner.clone()).prop_map(|(a, p, q)| Policy::If(
                a,
                Box::new(p),
                Box::new(q)
            )),
            inner.prop_map(|p| p.atomic()),
        ]
    })
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    proptest::collection::vec(arb_value(), FIELDS.len())
        .prop_map(|vals| FIELDS.iter().cloned().zip(vals).collect::<Packet>())
}

fn arb_store() -> impl Strategy<Value = Store> {
    proptest::collection::vec(
        (
            arb_state_var(),
            proptest::collection::vec(arb_value(), 1..=2),
            arb_int_value(),
        ),
        0..4,
    )
    .prop_map(|entries| {
        let mut store = Store::new();
        for (var, idx, val) in entries {
            store.set(&var, idx, val);
        }
        store
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn xfdd_translation_preserves_semantics(
        policy in arb_policy(),
        packet in arb_packet(),
        store in arb_store(),
    ) {
        let diagram = match snap_xfdd::compile(&policy) {
            Ok(d) => d,
            Err(_) => return Ok(()), // rejected programs have no semantics to compare
        };
        prop_assert!(diagram.is_well_formed(), "ill-formed diagram: {diagram:?}");

        let reference = match eval(&policy, &store, &packet) {
            Ok(r) => r,
            Err(_) => return Ok(()), // undefined by the language semantics
        };
        let (pkts, new_store) = diagram
            .evaluate(&packet, &store)
            .expect("xFDD evaluation failed where eval succeeded");
        prop_assert_eq!(&pkts, &reference.packets, "packet sets differ for {:?}", policy);
        prop_assert_eq!(&new_store, &reference.store, "stores differ for {:?}", policy);
    }

    #[test]
    fn diagrams_are_always_well_formed(policy in arb_policy()) {
        if let Ok(d) = snap_xfdd::compile(&policy) {
            prop_assert!(d.is_well_formed());
            prop_assert!(d.find_race().is_none());
        }
    }

    #[test]
    fn interning_never_stores_more_nodes_than_the_tree(policy in arb_policy()) {
        // The arena representation must never be larger than the unshared
        // tree the old representation materialized.
        if let Ok(d) = snap_xfdd::compile(&policy) {
            prop_assert!(
                (d.size() as u64) <= d.tree_size(),
                "arena {} nodes > tree {} nodes for {:?}",
                d.size(),
                d.tree_size(),
                policy
            );
        }
    }

    #[test]
    fn recompiling_into_one_pool_is_deterministic(policy in arb_policy()) {
        // Translating the same policy twice into the same pool must hit the
        // interner/memo tables and return the same root without growing the
        // arena.
        let deps = StateDependencies::analyze(&policy);
        let mut pool = snap_xfdd::Pool::new(deps.var_order());
        let first = match snap_xfdd::to_xfdd(&policy, &mut pool) {
            Ok(d) => d,
            Err(_) => return Ok(()),
        };
        let nodes_after_first = pool.len();
        let second = snap_xfdd::to_xfdd(&policy, &mut pool).expect("second translation");
        prop_assert_eq!(first, second);
        prop_assert_eq!(pool.len(), nodes_after_first, "re-translation grew the arena");
    }

    #[test]
    fn var_order_respects_dependencies(policy in arb_policy()) {
        let deps = StateDependencies::analyze(&policy);
        let order = deps.var_order();
        for (s, t) in &deps.dep {
            prop_assert!(order.rank(s) < order.rank(t), "{s} should precede {t}");
        }
        for v in &deps.variables {
            prop_assert!(order.contains(v));
        }
    }
}
