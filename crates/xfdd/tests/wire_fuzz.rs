//! Robustness of the wire-format decoder against malformed input: for valid
//! encodings of representative diagrams, every truncation must decode to an
//! error (never a panic), and arbitrary bit flips must either decode to an
//! error or to a *well-defined* diagram the pool accepts — the decoder is
//! fed controller→switch bytes and must never take a switch down.

use proptest::prelude::*;
use snap_lang::builder::*;
use snap_lang::{Field, Policy, Value};
use snap_xfdd::{
    apply_delta, decode_delta_fresh, decode_diagram, encode_delta, encode_diagram, to_xfdd, NodeId,
    Pool, StateDependencies, VarOrder,
};

/// Representative policies covering every encoded shape: all three test
/// kinds, all four actions, tuples, prefixes, symbols, parallel leaves.
fn corpus() -> Vec<Policy> {
    vec![
        ite(
            test_prefix(Field::DstIp, 10, 0, 6, 0, 24).and(test(Field::SrcPort, Value::Int(53))),
            Policy::seq_all(vec![
                state_set(
                    "orphan",
                    vec![field(Field::DstIp), field(Field::DnsRdata)],
                    Value::Bool(true),
                ),
                state_incr("susp", vec![field(Field::DstIp)]),
                modify(Field::OutPort, Value::Int(6)),
            ]),
            ite(
                state_test(
                    "mode",
                    vec![snap_lang::Expr::Tuple(vec![field(Field::SrcIp), int(1)])],
                    snap_lang::Expr::Value(Value::sym("ESTABLISHED")),
                ),
                state_decr("susp", vec![field(Field::SrcIp)]),
                modify(Field::Content, Value::str("quarantine")),
            ),
        ),
        modify(Field::OutPort, Value::Int(1)).par(state_incr("c", vec![field(Field::InPort)])),
        ite(
            test(Field::SrcPort, Value::Int(53)),
            modify(Field::OutPort, Value::Int(6)),
            drop(),
        ),
    ]
}

fn encodings() -> Vec<Vec<u8>> {
    corpus()
        .iter()
        .map(|policy| {
            let deps = StateDependencies::analyze(policy);
            let mut pool = Pool::new(deps.var_order());
            let root = to_xfdd(policy, &mut pool).unwrap();
            encode_diagram(&pool, root)
        })
        .collect()
}

/// One member of a family of policies a controller might walk through while
/// editing: thresholds, egress ports and a guard toggle vary, the state
/// variables (and hence the composition order) stay fixed.
fn edited_policy(threshold: i64, egress: i64, guarded: bool) -> Policy {
    let detect = ite(
        test(Field::SrcPort, Value::Int(53)),
        ite(
            state_test("susp", vec![field(Field::DstIp)], int(threshold)),
            drop(),
            state_incr("susp", vec![field(Field::DstIp)]),
        ),
        id(),
    );
    let route = ite(
        test_prefix(Field::DstIp, 10, 0, 6, 0, 24),
        modify(Field::OutPort, Value::Int(egress)),
        modify(Field::OutPort, Value::Int(1)),
    );
    if guarded {
        ite(
            test_prefix(Field::SrcIp, 10, 0, 0, 0, 8),
            detect.seq(route),
            drop(),
        )
    } else {
        detect.seq(route)
    }
}

fn edited_order() -> VarOrder {
    StateDependencies::analyze(&edited_policy(1, 1, false)).var_order()
}

/// Assert two pools hold identical node tables (same nodes at same ids).
fn assert_mirrors(a: &Pool, b: &Pool) {
    assert_eq!(a.len(), b.len(), "mirrors differ in length");
    for i in 0..a.len() {
        let id = NodeId(i as u32);
        assert_eq!(a.node(id), b.node(id), "mirrors differ at node {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // For random policy-edit sequences, shipping suffix deltas keeps the
    // receiver node-for-node identical to the controller's pool — and to a
    // full-table decode from scratch.
    #[test]
    fn delta_sequences_mirror_full_decode(
        edits in proptest::collection::vec((1i64..=12, 1i64..=6, any::<bool>()), 1..6),
    ) {
        let order = edited_order();
        let fresh_len = Pool::new(order.clone()).len();
        let mut dist = Pool::new(order.clone());
        let mut mirror: Option<Pool> = None;

        for (threshold, egress, guarded) in edits {
            let policy = edited_policy(threshold, egress, guarded);
            let base = dist.len();
            let root = to_xfdd(&policy, &mut dist).unwrap();
            let delta = encode_delta(&dist, base, root);

            let applied_root = match mirror.as_mut() {
                None => {
                    // Bootstrap: full-table payload into a fresh pool.
                    let boot = encode_delta(&dist, fresh_len, root);
                    let (pool, r) = decode_delta_fresh(&boot).unwrap();
                    mirror = Some(pool);
                    r
                }
                Some(m) => apply_delta(&delta, m).unwrap(),
            };
            let m = mirror.as_ref().unwrap();
            prop_assert_eq!(applied_root, root);
            assert_mirrors(m, &dist);

            // The incrementally maintained mirror equals a from-scratch
            // full-table decode of the same state.
            let full = encode_delta(&dist, fresh_len, root);
            let (scratch, scratch_root) = decode_delta_fresh(&full).unwrap();
            prop_assert_eq!(scratch_root, root);
            assert_mirrors(&scratch, m);
        }
    }

    // Any strict prefix of a delta payload errors (never panics), and the
    // receiving mirror can always be resynced afterwards.
    #[test]
    fn truncated_deltas_error_and_never_panic(
        threshold in 1i64..=12,
        cut in 0usize..10_000,
    ) {
        let order = edited_order();
        let fresh_len = Pool::new(order.clone()).len();
        let mut dist = Pool::new(order.clone());
        let r1 = to_xfdd(&edited_policy(1, 1, false), &mut dist).unwrap();
        let boot = encode_delta(&dist, fresh_len, r1);
        let (mirror, _) = decode_delta_fresh(&boot).unwrap();

        let base = dist.len();
        let r2 = to_xfdd(&edited_policy(threshold, 2, true), &mut dist).unwrap();
        let delta = encode_delta(&dist, base, r2);
        let cut = cut % delta.len();
        prop_assert!(apply_delta(&delta[..cut], &mut mirror.clone()).is_err());
    }

    // Arbitrary single-byte corruption of a delta payload must never panic:
    // it either errors or produces a structurally valid pool state.
    #[test]
    fn bit_flipped_deltas_never_panic(
        threshold in 1i64..=12,
        pos in 0usize..10_000,
        bit in 0u32..8,
    ) {
        let order = edited_order();
        let fresh_len = Pool::new(order.clone()).len();
        let mut dist = Pool::new(order.clone());
        let r1 = to_xfdd(&edited_policy(1, 1, false), &mut dist).unwrap();
        let boot = encode_delta(&dist, fresh_len, r1);
        let (mirror, _) = decode_delta_fresh(&boot).unwrap();

        let base = dist.len();
        let r2 = to_xfdd(&edited_policy(threshold, 3, true), &mut dist).unwrap();
        let mut delta = encode_delta(&dist, base, r2);
        let pos = pos % delta.len();
        delta[pos] ^= 1 << bit;

        let mut target = mirror.clone();
        if let Ok(root) = apply_delta(&delta, &mut target) {
            prop_assert!(root.index() < target.len());
            prop_assert!(target.size(root) >= 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn truncated_encodings_error_and_never_panic(
        which in 0usize..3,
        cut in 0usize..10_000,
    ) {
        let bytes = &encodings()[which];
        // Any strict prefix is a decode error — a prefix can never look
        // complete because the trailing root id is mandatory.
        let cut = cut % bytes.len();
        prop_assert!(decode_diagram(&bytes[..cut]).is_err());
    }

    #[test]
    fn bit_flipped_encodings_never_panic(
        which in 0usize..3,
        pos in 0usize..10_000,
        bit in 0u32..8,
    ) {
        let mut bytes = encodings()[which].clone();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        // A flipped bit may still be a structurally valid diagram (e.g. a
        // flipped payload byte inside an integer value); what it must never
        // do is panic or produce a diagram the pool itself rejects.
        if let Ok((pool, root)) = decode_diagram(&bytes) {
            prop_assert!(root.index() < pool.len());
            // The decoded diagram is a real, traversable pool citizen.
            prop_assert!(pool.size(root) >= 1);
        }
    }

    #[test]
    fn multi_byte_corruption_never_panics(
        which in 0usize..3,
        a in 0usize..10_000,
        b in 0usize..10_000,
        byte in 0u8..=255,
    ) {
        let mut bytes = encodings()[which].clone();
        let len = bytes.len();
        bytes[a % len] = byte;
        bytes[b % len] = byte.wrapping_mul(31).wrapping_add(7);
        if let Ok((pool, root)) = decode_diagram(&bytes) {
            prop_assert!(root.index() < pool.len());
        }
    }
}
