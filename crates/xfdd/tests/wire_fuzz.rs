//! Robustness of the wire-format decoder against malformed input: for valid
//! encodings of representative diagrams, every truncation must decode to an
//! error (never a panic), and arbitrary bit flips must either decode to an
//! error or to a *well-defined* diagram the pool accepts — the decoder is
//! fed controller→switch bytes and must never take a switch down.

use proptest::prelude::*;
use snap_lang::builder::*;
use snap_lang::{Field, Policy, Value};
use snap_xfdd::{decode_diagram, encode_diagram, to_xfdd, Pool, StateDependencies};

/// Representative policies covering every encoded shape: all three test
/// kinds, all four actions, tuples, prefixes, symbols, parallel leaves.
fn corpus() -> Vec<Policy> {
    vec![
        ite(
            test_prefix(Field::DstIp, 10, 0, 6, 0, 24).and(test(Field::SrcPort, Value::Int(53))),
            Policy::seq_all(vec![
                state_set(
                    "orphan",
                    vec![field(Field::DstIp), field(Field::DnsRdata)],
                    Value::Bool(true),
                ),
                state_incr("susp", vec![field(Field::DstIp)]),
                modify(Field::OutPort, Value::Int(6)),
            ]),
            ite(
                state_test(
                    "mode",
                    vec![snap_lang::Expr::Tuple(vec![field(Field::SrcIp), int(1)])],
                    snap_lang::Expr::Value(Value::sym("ESTABLISHED")),
                ),
                state_decr("susp", vec![field(Field::SrcIp)]),
                modify(Field::Content, Value::str("quarantine")),
            ),
        ),
        modify(Field::OutPort, Value::Int(1)).par(state_incr("c", vec![field(Field::InPort)])),
        ite(
            test(Field::SrcPort, Value::Int(53)),
            modify(Field::OutPort, Value::Int(6)),
            drop(),
        ),
    ]
}

fn encodings() -> Vec<Vec<u8>> {
    corpus()
        .iter()
        .map(|policy| {
            let deps = StateDependencies::analyze(policy);
            let mut pool = Pool::new(deps.var_order());
            let root = to_xfdd(policy, &mut pool).unwrap();
            encode_diagram(&pool, root)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn truncated_encodings_error_and_never_panic(
        which in 0usize..3,
        cut in 0usize..10_000,
    ) {
        let bytes = &encodings()[which];
        // Any strict prefix is a decode error — a prefix can never look
        // complete because the trailing root id is mandatory.
        let cut = cut % bytes.len();
        prop_assert!(decode_diagram(&bytes[..cut]).is_err());
    }

    #[test]
    fn bit_flipped_encodings_never_panic(
        which in 0usize..3,
        pos in 0usize..10_000,
        bit in 0u32..8,
    ) {
        let mut bytes = encodings()[which].clone();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        // A flipped bit may still be a structurally valid diagram (e.g. a
        // flipped payload byte inside an integer value); what it must never
        // do is panic or produce a diagram the pool itself rejects.
        if let Ok((pool, root)) = decode_diagram(&bytes) {
            prop_assert!(root.index() < pool.len());
            // The decoded diagram is a real, traversable pool citizen.
            prop_assert!(pool.size(root) >= 1);
        }
    }

    #[test]
    fn multi_byte_corruption_never_panics(
        which in 0usize..3,
        a in 0usize..10_000,
        b in 0usize..10_000,
        byte in 0u8..=255,
    ) {
        let mut bytes = encodings()[which].clone();
        let len = bytes.len();
        bytes[a % len] = byte;
        bytes[b % len] = byte.wrapping_mul(31).wrapping_add(7);
        if let Ok((pool, root)) = decode_diagram(&bytes) {
            prop_assert!(root.index() < pool.len());
        }
    }
}
