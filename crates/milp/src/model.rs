//! Model-building API for linear and mixed-integer linear programs.
//!
//! The SNAP compiler builds its joint placement/routing optimization (§4.4,
//! Tables 1–2) through this interface; the solver crates-io ecosystem for
//! MILP is immature, so the solver itself (simplex + branch and bound) is
//! implemented from scratch in this crate.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A variable handle.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct VarId(pub usize);

/// The kind of a variable.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum VarKind {
    /// A continuous variable in `[lb, ub]` (`ub` may be `f64::INFINITY`).
    Continuous {
        /// Lower bound (must be ≥ 0; the solver works in standard form).
        lb: f64,
        /// Upper bound.
        ub: f64,
    },
    /// A binary variable in `{0, 1}`.
    Binary,
}

/// The sense of a constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// A sparse linear expression: a map from variables to coefficients.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LinExpr {
    terms: BTreeMap<VarId, f64>,
}

impl LinExpr {
    /// The empty expression.
    pub fn new() -> Self {
        LinExpr::default()
    }

    /// Add `coef * var` to the expression (accumulating).
    pub fn add(&mut self, var: VarId, coef: f64) -> &mut Self {
        *self.terms.entry(var).or_insert(0.0) += coef;
        self
    }

    /// Builder-style [`LinExpr::add`].
    pub fn with(mut self, var: VarId, coef: f64) -> Self {
        self.add(var, coef);
        self
    }

    /// Build an expression from `(var, coef)` pairs.
    pub fn from_terms(terms: impl IntoIterator<Item = (VarId, f64)>) -> Self {
        let mut e = LinExpr::new();
        for (v, c) in terms {
            e.add(v, c);
        }
        e
    }

    /// The terms of the expression.
    pub fn terms(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// Number of nonzero terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Is the expression empty?
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluate the expression on an assignment.
    pub fn eval(&self, assignment: &[f64]) -> f64 {
        self.terms
            .iter()
            .map(|(v, c)| c * assignment.get(v.0).copied().unwrap_or(0.0))
            .sum()
    }
}

/// A linear constraint.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Optional name, for debugging.
    pub name: String,
    /// The left-hand side.
    pub expr: LinExpr,
    /// The sense.
    pub sense: Sense,
    /// The right-hand side.
    pub rhs: f64,
}

/// A linear / mixed-integer linear program (minimization).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Model {
    vars: Vec<VarKind>,
    var_names: Vec<String>,
    objective: LinExpr,
    constraints: Vec<Constraint>,
}

impl Model {
    /// An empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Add a continuous variable in `[lb, ub]`.
    pub fn add_var(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> VarId {
        assert!(
            lb >= 0.0,
            "the solver works in standard form: lb must be ≥ 0"
        );
        assert!(ub >= lb, "upper bound must be at least the lower bound");
        let id = VarId(self.vars.len());
        self.vars.push(VarKind::Continuous { lb, ub });
        self.var_names.push(name.into());
        id
    }

    /// Add a binary variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(VarKind::Binary);
        self.var_names.push(name.into());
        id
    }

    /// Set the objective coefficient of a variable (minimization).
    pub fn set_objective(&mut self, var: VarId, coef: f64) {
        self.objective.add(var, coef);
    }

    /// Add a constraint.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        expr: LinExpr,
        sense: Sense,
        rhs: f64,
    ) {
        self.constraints.push(Constraint {
            name: name.into(),
            expr,
            sense,
            rhs,
        });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The kind of a variable.
    pub fn var_kind(&self, var: VarId) -> VarKind {
        self.vars[var.0]
    }

    /// The name of a variable.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.var_names[var.0]
    }

    /// The objective expression.
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The binary variables of the model.
    pub fn binary_vars(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .enumerate()
            .filter_map(|(i, k)| matches!(k, VarKind::Binary).then_some(VarId(i)))
            .collect()
    }

    /// Is an assignment feasible (within `tol`) for all constraints and bounds?
    pub fn is_feasible(&self, assignment: &[f64], tol: f64) -> bool {
        if assignment.len() != self.vars.len() {
            return false;
        }
        for (i, kind) in self.vars.iter().enumerate() {
            let x = assignment[i];
            let (lb, ub) = match kind {
                VarKind::Continuous { lb, ub } => (*lb, *ub),
                VarKind::Binary => (0.0, 1.0),
            };
            if x < lb - tol || x > ub + tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs = c.expr.eval(assignment);
            let ok = match c.sense {
                Sense::Le => lhs <= c.rhs + tol,
                Sense::Ge => lhs >= c.rhs - tol,
                Sense::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

/// A solution to a model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// The value of each variable, indexed by `VarId`.
    pub values: Vec<f64>,
    /// The objective value.
    pub objective: f64,
}

impl Solution {
    /// The value of a variable.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.0]
    }

    /// Is a (binary or near-integral) variable set, i.e. ≥ 0.5?
    pub fn is_set(&self, var: VarId) -> bool {
        self.value(var) >= 0.5
    }
}

/// Solver outcome.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SolveResult {
    /// An optimal solution was found.
    Optimal(Solution),
    /// The problem has no feasible solution.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

impl SolveResult {
    /// The solution, if optimal.
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            SolveResult::Optimal(s) => Some(s),
            _ => None,
        }
    }

    /// Unwrap the optimal solution (panics otherwise).
    pub fn expect_optimal(self, msg: &str) -> Solution {
        match self {
            SolveResult::Optimal(s) => s,
            other => panic!("{msg}: {other:?}"),
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "model with {} vars, {} constraints",
            self.num_vars(),
            self.num_constraints()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_a_small_model() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 10.0);
        let y = m.add_binary("y");
        m.set_objective(x, 1.0);
        m.set_objective(y, -2.0);
        m.add_constraint(
            "c1",
            LinExpr::new().with(x, 1.0).with(y, 1.0),
            Sense::Le,
            5.0,
        );
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.binary_vars(), vec![y]);
        assert_eq!(m.var_name(x), "x");
        assert!(matches!(m.var_kind(x), VarKind::Continuous { .. }));
    }

    #[test]
    fn lin_expr_accumulates_and_evaluates() {
        let x = VarId(0);
        let y = VarId(1);
        let mut e = LinExpr::new();
        e.add(x, 1.0);
        e.add(x, 2.0);
        e.add(y, -1.0);
        assert_eq!(e.len(), 2);
        assert_eq!(e.eval(&[2.0, 3.0]), 3.0 * 2.0 - 3.0);
        let e2 = LinExpr::from_terms([(x, 3.0), (y, -1.0)]);
        assert_eq!(e, e2);
        assert!(!e.is_empty());
        assert!(LinExpr::new().is_empty());
    }

    #[test]
    fn feasibility_checks_bounds_and_constraints() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 4.0);
        let y = m.add_binary("y");
        m.add_constraint(
            "c",
            LinExpr::new().with(x, 1.0).with(y, 2.0),
            Sense::Ge,
            3.0,
        );
        assert!(m.is_feasible(&[3.0, 0.0], 1e-9));
        assert!(m.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!m.is_feasible(&[1.0, 0.0], 1e-9)); // constraint violated
        assert!(!m.is_feasible(&[5.0, 0.0], 1e-9)); // bound violated
        assert!(!m.is_feasible(&[1.0, 2.0], 1e-9)); // binary out of range
        assert!(!m.is_feasible(&[1.0], 1e-9)); // wrong arity
        let _ = x;
    }

    #[test]
    #[should_panic(expected = "standard form")]
    fn negative_lower_bound_is_rejected() {
        let mut m = Model::new();
        m.add_var("x", -1.0, 1.0);
    }

    #[test]
    fn solution_accessors() {
        let s = Solution {
            values: vec![0.0, 1.0, 0.3],
            objective: 4.5,
        };
        assert!(!s.is_set(VarId(0)));
        assert!(s.is_set(VarId(1)));
        assert!(!s.is_set(VarId(2)));
        assert_eq!(s.value(VarId(2)), 0.3);
        let r = SolveResult::Optimal(s.clone());
        assert_eq!(r.solution(), Some(&s));
        assert_eq!(SolveResult::Infeasible.solution(), None);
    }
}
