//! Branch and bound over the LP relaxation, for models with binary variables.
//!
//! The SNAP placement/routing problem has binary placement variables `P_{s,n}`
//! and continuous routing variables; branch and bound on the placement
//! variables with the simplex LP relaxation as the bounding procedure solves
//! it exactly on small and medium instances.

use crate::model::{Model, Solution, SolveResult, VarId};
use crate::simplex::{default_bounds, solve_lp_with_bounds};

/// Options controlling the branch-and-bound search.
#[derive(Clone, Debug)]
pub struct BranchBoundOptions {
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Maximum number of explored nodes before giving up and returning the
    /// best incumbent (or `Infeasible` if none was found).
    pub max_nodes: usize,
}

impl Default for BranchBoundOptions {
    fn default() -> Self {
        BranchBoundOptions {
            int_tol: 1e-6,
            max_nodes: 100_000,
        }
    }
}

/// Statistics about a branch-and-bound run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BranchBoundStats {
    /// LP relaxations solved.
    pub nodes_explored: usize,
    /// Nodes pruned by bound.
    pub nodes_pruned: usize,
}

/// Solve a mixed-integer program with default options.
pub fn solve_milp(model: &Model) -> SolveResult {
    solve_milp_with(model, &BranchBoundOptions::default()).0
}

/// Solve a mixed-integer program, returning search statistics as well.
pub fn solve_milp_with(
    model: &Model,
    options: &BranchBoundOptions,
) -> (SolveResult, BranchBoundStats) {
    let binaries = model.binary_vars();
    let mut stats = BranchBoundStats::default();

    // No integer variables: plain LP.
    if binaries.is_empty() {
        stats.nodes_explored = 1;
        return (solve_lp_with_bounds(model, &default_bounds(model)), stats);
    }

    let root_bounds = default_bounds(model);
    let mut best: Option<Solution> = None;
    // Depth-first stack of nodes, each node being a bounds vector.
    let mut stack = vec![root_bounds];
    let mut saw_feasible_relaxation = false;

    while let Some(bounds) = stack.pop() {
        if stats.nodes_explored >= options.max_nodes {
            break;
        }
        stats.nodes_explored += 1;
        let relaxed = match solve_lp_with_bounds(model, &bounds) {
            SolveResult::Optimal(s) => s,
            SolveResult::Infeasible => continue,
            // An unbounded relaxation of a node with all binaries still free
            // means the MILP itself is unbounded in its continuous part.
            SolveResult::Unbounded => return (SolveResult::Unbounded, stats),
        };
        saw_feasible_relaxation = true;

        // Bound: prune nodes that cannot beat the incumbent.
        if let Some(ref incumbent) = best {
            if relaxed.objective >= incumbent.objective - 1e-9 {
                stats.nodes_pruned += 1;
                continue;
            }
        }

        // Find the most fractional binary variable.
        let mut branch_var: Option<VarId> = None;
        let mut most_fractional = options.int_tol;
        for &v in &binaries {
            let x = relaxed.value(v);
            let frac = (x - x.round()).abs();
            if frac > most_fractional {
                most_fractional = frac;
                branch_var = Some(v);
            }
        }

        match branch_var {
            None => {
                // All binaries integral: candidate incumbent.
                let better = best
                    .as_ref()
                    .map(|b| relaxed.objective < b.objective - 1e-9)
                    .unwrap_or(true);
                if better {
                    best = Some(round_binaries(relaxed, &binaries));
                }
            }
            Some(v) => {
                let mut zero = bounds.clone();
                zero[v.0] = (0.0, 0.0);
                let mut one = bounds;
                one[v.0] = (1.0, 1.0);
                // Explore the side the relaxation leans towards first.
                if relaxed.value(v) >= 0.5 {
                    stack.push(zero);
                    stack.push(one);
                } else {
                    stack.push(one);
                    stack.push(zero);
                }
            }
        }
    }

    match best {
        Some(s) => (SolveResult::Optimal(s), stats),
        None => {
            if saw_feasible_relaxation {
                // Relaxations were feasible but no integral solution was found
                // within the node budget.
                (SolveResult::Infeasible, stats)
            } else {
                (SolveResult::Infeasible, stats)
            }
        }
    }
}

fn round_binaries(mut s: Solution, binaries: &[VarId]) -> Solution {
    for &v in binaries {
        s.values[v.0] = s.values[v.0].round();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "{a} != {b}");
    }

    #[test]
    fn pure_lp_passes_through() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 3.0);
        m.set_objective(x, -1.0);
        let (r, stats) = solve_milp_with(&m, &BranchBoundOptions::default());
        assert_close(r.expect_optimal("lp").value(x), 3.0);
        assert_eq!(stats.nodes_explored, 1);
    }

    #[test]
    fn knapsack_small() {
        // max 10a + 6b + 4c  s.t. a + b + c <= 2 (binaries) -> a, b chosen.
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.set_objective(a, -10.0);
        m.set_objective(b, -6.0);
        m.set_objective(c, -4.0);
        m.add_constraint(
            "cap",
            LinExpr::new().with(a, 1.0).with(b, 1.0).with(c, 1.0),
            Sense::Le,
            2.0,
        );
        let s = solve_milp(&m).expect_optimal("milp");
        assert!(s.is_set(a));
        assert!(s.is_set(b));
        assert!(!s.is_set(c));
        assert_close(s.objective, -16.0);
    }

    #[test]
    fn knapsack_with_weights_needs_branching() {
        // max 8x1 + 11x2 + 6x3 + 4x4 s.t. 5x1 + 7x2 + 4x3 + 3x4 <= 14.
        // Optimal integer solution: x1, x2 (and x4 does not fit with x3): value 8+11+4=23? Check:
        // capacities: x1+x2 = 12 -> room 2, x4 needs 3, x3 needs 4 -> total 19.
        // x1,x3,x4: 5+4+3=12 <=14, value 8+6+4=18. x2,x3,x4: 7+4+3=14, value 21.
        // x1,x2: 19? no: 12 <= 14, value 19. Best is x2,x3,x4 = 21? vs x1,x2=19 -> 21.
        let mut m = Model::new();
        let x1 = m.add_binary("x1");
        let x2 = m.add_binary("x2");
        let x3 = m.add_binary("x3");
        let x4 = m.add_binary("x4");
        for (v, p) in [(x1, 8.0), (x2, 11.0), (x3, 6.0), (x4, 4.0)] {
            m.set_objective(v, -p);
        }
        m.add_constraint(
            "cap",
            LinExpr::from_terms([(x1, 5.0), (x2, 7.0), (x3, 4.0), (x4, 3.0)]),
            Sense::Le,
            14.0,
        );
        let s = solve_milp(&m).expect_optimal("milp");
        assert_close(s.objective, -21.0);
        assert!(!s.is_set(x1));
        assert!(s.is_set(x2));
        assert!(s.is_set(x3));
        assert!(s.is_set(x4));
    }

    #[test]
    fn facility_location_toy() {
        // Two facilities (binary open variables), three clients; each client
        // must be served by an open facility; facility opening costs dominate
        // so exactly one facility opens and serves everyone.
        let mut m = Model::new();
        let open_a = m.add_binary("open_a");
        let open_b = m.add_binary("open_b");
        m.set_objective(open_a, 10.0);
        m.set_objective(open_b, 12.0);
        let mut serve = Vec::new();
        for client in 0..3 {
            let sa = m.add_var(format!("serve_a_{client}"), 0.0, 1.0);
            let sb = m.add_var(format!("serve_b_{client}"), 0.0, 1.0);
            // Serving costs differ slightly.
            m.set_objective(sa, 1.0);
            m.set_objective(sb, 0.5);
            m.add_constraint(
                format!("demand_{client}"),
                LinExpr::new().with(sa, 1.0).with(sb, 1.0),
                Sense::Eq,
                1.0,
            );
            m.add_constraint(
                format!("open_a_{client}"),
                LinExpr::new().with(sa, 1.0).with(open_a, -1.0),
                Sense::Le,
                0.0,
            );
            m.add_constraint(
                format!("open_b_{client}"),
                LinExpr::new().with(sb, 1.0).with(open_b, -1.0),
                Sense::Le,
                0.0,
            );
            serve.push((sa, sb));
        }
        let s = solve_milp(&m).expect_optimal("milp");
        // Opening A costs 10 + 3*1 = 13, opening B costs 12 + 3*0.5 = 13.5,
        // opening both is never cheaper -> A only.
        assert!(s.is_set(open_a));
        assert!(!s.is_set(open_b));
        assert_close(s.objective, 13.0);
        for (sa, sb) in serve {
            assert_close(s.value(sa), 1.0);
            assert_close(s.value(sb), 0.0);
        }
    }

    #[test]
    fn infeasible_integer_program() {
        // x + y = 1.5 with x, y binary has a feasible relaxation but no
        // integral solution... actually x=1,y=0.5 is fractional; x=1,y=1 sums
        // to 2; so it is integrally infeasible.
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.set_objective(x, 1.0);
        m.set_objective(y, 1.0);
        m.add_constraint(
            "c",
            LinExpr::new().with(x, 1.0).with(y, 1.0),
            Sense::Eq,
            1.5,
        );
        assert_eq!(solve_milp(&m), SolveResult::Infeasible);
    }

    #[test]
    fn integral_solution_is_feasible_for_the_model() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_var("z", 0.0, 10.0);
        m.set_objective(z, 1.0);
        m.set_objective(x, 2.0);
        m.set_objective(y, 3.0);
        // z >= 4 - 3x - 3y : need at least some capacity open.
        m.add_constraint(
            "cover",
            LinExpr::from_terms([(z, 1.0), (x, 3.0), (y, 3.0)]),
            Sense::Ge,
            4.0,
        );
        let s = solve_milp(&m).expect_optimal("milp");
        assert!(m.is_feasible(&s.values, 1e-6));
        // Best: open x (cost 2) and cover remaining 1 with z -> 3.0 total.
        assert_close(s.objective, 3.0);
        let _ = y;
    }

    #[test]
    fn stats_report_explored_nodes() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.set_objective(x, -1.0);
        m.set_objective(y, -1.0);
        m.add_constraint(
            "c",
            LinExpr::new().with(x, 1.0).with(y, 1.0),
            Sense::Le,
            1.0,
        );
        let (r, stats) = solve_milp_with(&m, &BranchBoundOptions::default());
        assert!(r.solution().is_some());
        assert!(stats.nodes_explored >= 1);
    }
}
