//! A two-phase primal simplex solver for linear programs.
//!
//! The implementation favours robustness over raw speed: it keeps a dense
//! tableau, recomputes reduced costs every iteration, uses Dantzig's rule
//! while progress is easy and falls back to Bland's rule (which guarantees
//! termination) after a fixed number of iterations. The SNAP optimization
//! problems solved exactly are small (tens of switches, aggregated demands);
//! larger instances go through the heuristic placer in `snap-core`.

use crate::model::{Model, Sense, Solution, SolveResult, VarKind};

const TOL: f64 = 1e-7;

/// Solve the LP relaxation of a model (binary variables are relaxed to
/// `[0, 1]`).
pub fn solve_lp(model: &Model) -> SolveResult {
    let bounds = default_bounds(model);
    solve_lp_with_bounds(model, &bounds)
}

/// The `[lb, ub]` box for each variable of a model (binaries become `[0,1]`).
pub fn default_bounds(model: &Model) -> Vec<(f64, f64)> {
    (0..model.num_vars())
        .map(|i| match model.var_kind(crate::model::VarId(i)) {
            VarKind::Continuous { lb, ub } => (lb, ub),
            VarKind::Binary => (0.0, 1.0),
        })
        .collect()
}

/// Solve the LP relaxation with explicit variable bounds (used by branch and
/// bound to fix or restrict binaries without rebuilding the model).
pub fn solve_lp_with_bounds(model: &Model, bounds: &[(f64, f64)]) -> SolveResult {
    assert_eq!(bounds.len(), model.num_vars());
    let n = model.num_vars();

    // Collect rows: the model's constraints plus bound rows for finite,
    // non-trivial bounds (x ≥ 0 is implicit in standard form).
    struct Row {
        coefs: Vec<(usize, f64)>,
        sense: Sense,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for c in model.constraints() {
        rows.push(Row {
            coefs: c.expr.terms().map(|(v, k)| (v.0, k)).collect(),
            sense: c.sense,
            rhs: c.rhs,
        });
    }
    for (i, &(lb, ub)) in bounds.iter().enumerate() {
        if lb > 0.0 {
            rows.push(Row {
                coefs: vec![(i, 1.0)],
                sense: Sense::Ge,
                rhs: lb,
            });
        }
        if ub.is_finite() {
            rows.push(Row {
                coefs: vec![(i, 1.0)],
                sense: Sense::Le,
                rhs: ub,
            });
        }
    }

    let m = rows.len();
    // With no rows at all, every variable sits at 0 and any negative
    // objective coefficient makes the program unbounded (finite bounds would
    // have produced rows).
    if m == 0 {
        if model.objective().terms().any(|(_, c)| c < -TOL) {
            return SolveResult::Unbounded;
        }
        return SolveResult::Optimal(Solution {
            values: vec![0.0; n],
            objective: 0.0,
        });
    }
    // Column layout: [structural | slacks/surplus | artificials].
    let mut num_slack = 0;
    let mut num_art = 0;
    for r in &rows {
        // Normalize to rhs ≥ 0 before deciding on slack/artificial columns.
        let rhs = r.rhs;
        let sense = if rhs < 0.0 { flip(r.sense) } else { r.sense };
        match sense {
            Sense::Le => num_slack += 1,
            Sense::Ge => {
                num_slack += 1;
                num_art += 1;
            }
            Sense::Eq => num_art += 1,
        }
    }
    let total = n + num_slack + num_art;
    let mut a = vec![vec![0.0f64; total]; m];
    let mut b = vec![0.0f64; m];
    let mut basis = vec![0usize; m];
    let art_start = n + num_slack;

    let mut slack_idx = n;
    let mut art_idx = art_start;
    for (i, r) in rows.iter().enumerate() {
        let mut rhs = r.rhs;
        let mut sign = 1.0;
        let mut sense = r.sense;
        if rhs < 0.0 {
            rhs = -rhs;
            sign = -1.0;
            sense = flip(r.sense);
        }
        for &(j, coef) in &r.coefs {
            a[i][j] += sign * coef;
        }
        b[i] = rhs;
        match sense {
            Sense::Le => {
                a[i][slack_idx] = 1.0;
                basis[i] = slack_idx;
                slack_idx += 1;
            }
            Sense::Ge => {
                a[i][slack_idx] = -1.0;
                slack_idx += 1;
                a[i][art_idx] = 1.0;
                basis[i] = art_idx;
                art_idx += 1;
            }
            Sense::Eq => {
                a[i][art_idx] = 1.0;
                basis[i] = art_idx;
                art_idx += 1;
            }
        }
    }

    // Phase 1: minimize the sum of artificial variables.
    if num_art > 0 {
        let mut cost = vec![0.0; total];
        for c in cost.iter_mut().skip(art_start) {
            *c = 1.0;
        }
        match run_simplex(&mut a, &mut b, &mut basis, &cost, total) {
            SimplexOutcome::Optimal => {}
            SimplexOutcome::Unbounded => return SolveResult::Infeasible,
        }
        let phase1_obj: f64 = basis
            .iter()
            .enumerate()
            .map(|(i, &bv)| if bv >= art_start { b[i] } else { 0.0 })
            .sum();
        if phase1_obj > 1e-6 {
            return SolveResult::Infeasible;
        }
        // Drive any remaining (degenerate) artificial variables out of the basis.
        for i in 0..m {
            if basis[i] >= art_start {
                if let Some(j) = (0..art_start).find(|&j| a[i][j].abs() > TOL) {
                    pivot(&mut a, &mut b, &mut basis, i, j);
                }
            }
        }
    }

    // Phase 2: original objective over structural (and slack) columns only.
    let mut cost = vec![0.0; total];
    for (v, coef) in model.objective().terms() {
        cost[v.0] = coef;
    }
    // Forbid artificial columns from re-entering by pricing them prohibitively.
    for c in cost.iter_mut().skip(art_start) {
        *c = 1e12;
    }
    match run_simplex(&mut a, &mut b, &mut basis, &cost, art_start) {
        SimplexOutcome::Optimal => {}
        SimplexOutcome::Unbounded => return SolveResult::Unbounded,
    }

    let mut values = vec![0.0; n];
    for (i, &bv) in basis.iter().enumerate() {
        if bv < n {
            values[bv] = b[i];
        }
    }
    let objective = model.objective().eval(&values);
    SolveResult::Optimal(Solution { values, objective })
}

fn flip(s: Sense) -> Sense {
    match s {
        Sense::Le => Sense::Ge,
        Sense::Ge => Sense::Le,
        Sense::Eq => Sense::Eq,
    }
}

enum SimplexOutcome {
    Optimal,
    Unbounded,
}

/// Run primal simplex on the tableau, allowing only columns `< allowed_cols`
/// to enter the basis. Dantzig's rule first, Bland's rule after a while.
fn run_simplex(
    a: &mut [Vec<f64>],
    b: &mut [f64],
    basis: &mut [usize],
    cost: &[f64],
    allowed_cols: usize,
) -> SimplexOutcome {
    let m = a.len();
    if m == 0 {
        return SimplexOutcome::Optimal;
    }
    let bland_after = 2_000usize;
    let max_iters = 200_000usize;
    for iter in 0..max_iters {
        // Reduced costs: r_j = c_j - c_B' * A_j.
        let cb: Vec<f64> = basis.iter().map(|&j| cost[j]).collect();
        let mut entering: Option<usize> = None;
        let mut best = -TOL;
        for j in 0..allowed_cols {
            if basis.contains(&j) {
                continue;
            }
            let mut r = cost[j];
            for i in 0..m {
                if cb[i] != 0.0 {
                    r -= cb[i] * a[i][j];
                }
            }
            if r < -TOL {
                if iter >= bland_after {
                    // Bland: first improving column.
                    entering = Some(j);
                    break;
                }
                if r < best {
                    best = r;
                    entering = Some(j);
                }
            }
        }
        let Some(j) = entering else {
            return SimplexOutcome::Optimal;
        };

        // Ratio test.
        let mut leaving: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            if a[i][j] > TOL {
                let ratio = b[i] / a[i][j];
                let better = ratio < best_ratio - TOL
                    || ((ratio - best_ratio).abs() <= TOL
                        && leaving.map(|l| basis[i] < basis[l]).unwrap_or(false));
                if leaving.is_none() || better {
                    best_ratio = ratio;
                    leaving = Some(i);
                }
            }
        }
        let Some(i) = leaving else {
            return SimplexOutcome::Unbounded;
        };
        pivot(a, b, basis, i, j);
    }
    // With Bland's rule the method terminates; reaching here means numerical
    // trouble — report the current (feasible) point as optimal-so-far.
    SimplexOutcome::Optimal
}

fn pivot(a: &mut [Vec<f64>], b: &mut [f64], basis: &mut [usize], row: usize, col: usize) {
    let m = a.len();
    let p = a[row][col];
    for v in a[row].iter_mut() {
        *v /= p;
    }
    b[row] /= p;
    for i in 0..m {
        if i != row {
            let factor = a[i][col];
            if factor.abs() > 0.0 {
                let (pivot_row, work_row) = if i < row {
                    let (head, tail) = a.split_at_mut(row);
                    (&tail[0], &mut head[i])
                } else {
                    let (head, tail) = a.split_at_mut(i);
                    (&head[row], &mut tail[0])
                };
                for (w, pv) in work_row.iter_mut().zip(pivot_row.iter()) {
                    *w -= factor * pv;
                }
                b[i] -= factor * b[row];
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model, Sense, VarId};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "{a} != {b}");
    }

    #[test]
    fn maximize_profit_classic_lp() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (min form: -3x -5y)
        // Optimum at x=2, y=6, objective -36.
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(x, -3.0);
        m.set_objective(y, -5.0);
        m.add_constraint("c1", LinExpr::new().with(x, 1.0), Sense::Le, 4.0);
        m.add_constraint("c2", LinExpr::new().with(y, 2.0), Sense::Le, 12.0);
        m.add_constraint(
            "c3",
            LinExpr::new().with(x, 3.0).with(y, 2.0),
            Sense::Le,
            18.0,
        );
        let s = solve_lp(&m).expect_optimal("should solve");
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
        assert_close(s.objective, -36.0);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + 2y s.t. x + y = 10, x >= 3, y >= 2 -> x=8, y=2, obj=12.
        let mut m = Model::new();
        let x = m.add_var("x", 3.0, f64::INFINITY);
        let y = m.add_var("y", 2.0, f64::INFINITY);
        m.set_objective(x, 1.0);
        m.set_objective(y, 2.0);
        m.add_constraint(
            "sum",
            LinExpr::new().with(x, 1.0).with(y, 1.0),
            Sense::Eq,
            10.0,
        );
        let s = solve_lp(&m).expect_optimal("should solve");
        assert_close(s.value(x), 8.0);
        assert_close(s.value(y), 2.0);
        assert_close(s.objective, 12.0);
    }

    #[test]
    fn infeasible_program_detected() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0);
        m.set_objective(x, 1.0);
        m.add_constraint("ge", LinExpr::new().with(x, 1.0), Sense::Ge, 2.0);
        assert_eq!(solve_lp(&m), SolveResult::Infeasible);
    }

    #[test]
    fn unbounded_program_detected() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.set_objective(x, -1.0);
        assert_eq!(solve_lp(&m), SolveResult::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // x - y <= -2 with x,y in [0,10], minimize x + y -> x=0, y=2.
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 10.0);
        let y = m.add_var("y", 0.0, 10.0);
        m.set_objective(x, 1.0);
        m.set_objective(y, 1.0);
        m.add_constraint(
            "c",
            LinExpr::new().with(x, 1.0).with(y, -1.0),
            Sense::Le,
            -2.0,
        );
        let s = solve_lp(&m).expect_optimal("should solve");
        assert_close(s.value(x), 0.0);
        assert_close(s.value(y), 2.0);
    }

    #[test]
    fn binary_vars_relax_to_unit_interval() {
        // min -(x + y) with x binary, x + 2y <= 2 -> LP relaxation x=1, y=0.5.
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.set_objective(x, -1.0);
        m.set_objective(y, -1.0);
        m.add_constraint(
            "c",
            LinExpr::new().with(x, 1.0).with(y, 2.0),
            Sense::Le,
            2.0,
        );
        let s = solve_lp(&m).expect_optimal("should solve");
        assert_close(s.value(x), 1.0);
        assert_close(s.value(y), 0.5);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate LP; just check it terminates at the optimum.
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(x, -1.0);
        m.set_objective(y, -1.0);
        m.add_constraint(
            "c1",
            LinExpr::new().with(x, 1.0).with(y, 1.0),
            Sense::Le,
            1.0,
        );
        m.add_constraint(
            "c2",
            LinExpr::new().with(x, 1.0).with(y, 1.0),
            Sense::Le,
            1.0,
        );
        m.add_constraint(
            "c3",
            LinExpr::new().with(x, 2.0).with(y, 1.0),
            Sense::Le,
            2.0,
        );
        let s = solve_lp(&m).expect_optimal("should solve");
        assert_close(s.objective, -1.0);
    }

    #[test]
    fn solution_is_feasible_for_the_model() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 5.0);
        let y = m.add_var("y", 1.0, 5.0);
        m.set_objective(x, 2.0);
        m.set_objective(y, 1.0);
        m.add_constraint(
            "c",
            LinExpr::new().with(x, 1.0).with(y, 1.0),
            Sense::Ge,
            4.0,
        );
        let s = solve_lp(&m).expect_optimal("should solve");
        assert!(m.is_feasible(&s.values, 1e-6));
        assert_close(s.objective, 4.0); // x=0, y=4
        let _ = (x, y);
    }

    #[test]
    fn bounds_overrides_are_respected() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.set_objective(x, -1.0);
        let s = solve_lp_with_bounds(&m, &[(0.0, 0.0)]).expect_optimal("should solve");
        assert_close(s.value(x), 0.0);
        let s = solve_lp_with_bounds(&m, &[(1.0, 1.0)]).expect_optimal("should solve");
        assert_close(s.value(x), 1.0);
    }

    #[test]
    fn multicommodity_toy_flow() {
        // Two units of flow from a to c over two parallel 1-capacity paths
        // a-b-c and a-d-c; minimize total link usage -> both paths used.
        // Variables: f1 (via b), f2 (via d).
        let mut m = Model::new();
        let f1 = m.add_var("f1", 0.0, f64::INFINITY);
        let f2 = m.add_var("f2", 0.0, f64::INFINITY);
        m.set_objective(f1, 2.0); // 2 links each
        m.set_objective(f2, 2.0);
        m.add_constraint(
            "demand",
            LinExpr::new().with(f1, 1.0).with(f2, 1.0),
            Sense::Eq,
            2.0,
        );
        m.add_constraint("cap1", LinExpr::new().with(f1, 1.0), Sense::Le, 1.0);
        m.add_constraint("cap2", LinExpr::new().with(f2, 1.0), Sense::Le, 1.0);
        let s = solve_lp(&m).expect_optimal("should solve");
        assert_close(s.value(f1), 1.0);
        assert_close(s.value(f2), 1.0);
        assert_close(s.objective, 4.0);
    }

    #[test]
    fn default_bounds_reflect_kinds() {
        let mut m = Model::new();
        let _x = m.add_var("x", 0.5, 2.0);
        let _y = m.add_binary("y");
        let b = default_bounds(&m);
        assert_eq!(b, vec![(0.5, 2.0), (0.0, 1.0)]);
        let _ = VarId(0);
    }
}
