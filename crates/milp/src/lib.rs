//! # snap-milp
//!
//! A small, dependency-free linear-programming and mixed-integer
//! linear-programming solver: a two-phase primal simplex method plus branch
//! and bound over binary variables.
//!
//! The SNAP paper solves its joint state-placement / routing optimization
//! (§4.4) with Gurobi; Gurobi is closed source and unavailable here, so this
//! crate provides the solver the compiler needs. It is tuned for the sizes
//! the exact formulation is actually used at (small and medium topologies,
//! aggregated demands); larger instances are handled by the heuristic placer
//! in `snap-core`.
//!
//! ```
//! use snap_milp::{LinExpr, Model, Sense, solve_milp};
//!
//! // Choose at most one of two facilities, maximizing profit 3a + 2b.
//! let mut m = Model::new();
//! let a = m.add_binary("a");
//! let b = m.add_binary("b");
//! m.set_objective(a, -3.0);
//! m.set_objective(b, -2.0);
//! m.add_constraint("one", LinExpr::new().with(a, 1.0).with(b, 1.0), Sense::Le, 1.0);
//! let solution = solve_milp(&m).expect_optimal("solvable");
//! assert!(solution.is_set(a) && !solution.is_set(b));
//! ```

#![warn(missing_docs)]

pub mod branch_bound;
pub mod model;
pub mod simplex;

pub use branch_bound::{solve_milp, solve_milp_with, BranchBoundOptions, BranchBoundStats};
pub use model::{Constraint, LinExpr, Model, Sense, Solution, SolveResult, VarId, VarKind};
pub use simplex::{solve_lp, solve_lp_with_bounds};
