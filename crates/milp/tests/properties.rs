//! Property-based tests for the LP/MILP solver: whatever the solver returns
//! must be feasible, and no sampled feasible point may beat it.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snap_milp::{solve_lp, solve_milp, LinExpr, Model, Sense, SolveResult, VarId};

/// A random bounded LP: variables in [0, ub], a handful of ≤ constraints with
/// non-negative coefficients (so the origin is always feasible and the
/// problem is never unbounded upward), and a mixed-sign objective.
fn random_lp(seed: u64, nvars: usize, ncons: usize, binaries: bool) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Model::new();
    let mut vars = Vec::new();
    for i in 0..nvars {
        let v = if binaries && rng.gen_bool(0.5) {
            m.add_binary(format!("b{i}"))
        } else {
            m.add_var(format!("x{i}"), 0.0, rng.gen_range(1.0..5.0))
        };
        m.set_objective(v, rng.gen_range(-3.0..3.0));
        vars.push(v);
    }
    for c in 0..ncons {
        let mut e = LinExpr::new();
        for &v in &vars {
            if rng.gen_bool(0.6) {
                e.add(v, rng.gen_range(0.0..2.0));
            }
        }
        if !e.is_empty() {
            m.add_constraint(format!("c{c}"), e, Sense::Le, rng.gen_range(1.0..6.0));
        }
    }
    m
}

/// Sample random feasible points of the box, keeping those satisfying all
/// constraints.
fn sample_feasible(model: &Model, seed: u64, tries: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for _ in 0..tries {
        let candidate: Vec<f64> = (0..model.num_vars())
            .map(|i| match model.var_kind(VarId(i)) {
                snap_milp::VarKind::Continuous { lb, ub } => rng.gen_range(lb..=ub.min(lb + 10.0)),
                snap_milp::VarKind::Binary => {
                    if rng.gen_bool(0.5) {
                        1.0
                    } else {
                        0.0
                    }
                }
            })
            .collect();
        if model.is_feasible(&candidate, 1e-9) {
            out.push(candidate);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lp_solution_is_feasible_and_not_beaten_by_samples(seed in 0u64..5_000) {
        let model = random_lp(seed, 4, 3, false);
        match solve_lp(&model) {
            SolveResult::Optimal(sol) => {
                prop_assert!(model.is_feasible(&sol.values, 1e-5), "solution must be feasible");
                for point in sample_feasible(&model, seed ^ 0xabcd, 50) {
                    let obj = model.objective().eval(&point);
                    prop_assert!(
                        sol.objective <= obj + 1e-6,
                        "sampled point beats the 'optimal' solution: {obj} < {}",
                        sol.objective
                    );
                }
            }
            // The origin is always feasible and the box is bounded, so the LP
            // can be neither infeasible nor unbounded.
            other => prop_assert!(false, "unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn milp_solution_is_integral_feasible_and_not_beaten_by_integral_samples(seed in 0u64..3_000) {
        let model = random_lp(seed, 4, 3, true);
        match solve_milp(&model) {
            SolveResult::Optimal(sol) => {
                prop_assert!(model.is_feasible(&sol.values, 1e-5));
                for v in model.binary_vars() {
                    let x = sol.value(v);
                    prop_assert!((x - x.round()).abs() < 1e-6, "binary {v:?} is fractional: {x}");
                }
                for point in sample_feasible(&model, seed ^ 0x1234, 50) {
                    let obj = model.objective().eval(&point);
                    prop_assert!(sol.objective <= obj + 1e-6);
                }
            }
            other => prop_assert!(false, "unexpected outcome {other:?}"),
        }
    }
}
