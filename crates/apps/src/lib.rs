//! # snap-apps
//!
//! The stateful network functions of Table 3 / Appendix F of the SNAP paper,
//! written against the `snap-lang` builder API. Each function returns a
//! [`Policy`] over the one big switch; most take their detection thresholds
//! as parameters so tests can exercise them with small values.
//!
//! The applications come from three systems the paper drew on — Chimera
//! (declarative traffic analysis), FAST (flow-level state machines) and
//! Bohatei (DDoS defense) — plus the Snort flowbits idiom and a
//! bump-on-the-wire TCP state machine.

#![warn(missing_docs)]

use snap_lang::builder::*;
use snap_lang::{Expr, Field, Policy, Value};

/// The five-tuple index `[srcip][dstip][srcport][dstport][proto]` used by the
/// flow-oriented policies (Appendix F's `flow-ind`).
pub fn flow_index() -> Vec<Expr> {
    vec![
        field(Field::SrcIp),
        field(Field::DstIp),
        field(Field::SrcPort),
        field(Field::DstPort),
        field(Field::Proto),
    ]
}

/// The reversed five-tuple (destination first), for matching the return
/// direction of a connection.
pub fn reverse_flow_index() -> Vec<Expr> {
    vec![
        field(Field::DstIp),
        field(Field::SrcIp),
        field(Field::DstPort),
        field(Field::SrcPort),
        field(Field::Proto),
    ]
}

// ---------------------------------------------------------------------------
// Running example (§2)
// ---------------------------------------------------------------------------

/// Figure 1: DNS tunnel detection for the protected subnet `10.0.6.0/24`.
pub fn dns_tunnel_detect(threshold: i64) -> Policy {
    ite(
        test_prefix(Field::DstIp, 10, 0, 6, 0, 24).and(test(Field::SrcPort, Value::Int(53))),
        Policy::seq_all(vec![
            state_set(
                "orphan",
                vec![field(Field::DstIp), field(Field::DnsRdata)],
                Value::Bool(true),
            ),
            state_incr("susp-client", vec![field(Field::DstIp)]),
            ite(
                state_test("susp-client", vec![field(Field::DstIp)], int(threshold)),
                state_set("blacklist", vec![field(Field::DstIp)], Value::Bool(true)),
                id(),
            ),
        ]),
        ite(
            test_prefix(Field::SrcIp, 10, 0, 6, 0, 24).and(state_truthy(
                "orphan",
                vec![field(Field::SrcIp), field(Field::DstIp)],
            )),
            state_set(
                "orphan",
                vec![field(Field::SrcIp), field(Field::DstIp)],
                Value::Bool(false),
            )
            .seq(state_decr("susp-client", vec![field(Field::SrcIp)])),
            id(),
        ),
    )
}

/// The `assign-egress` policy of §2.1 for a network with `ports` external
/// ports, port `i` serving subnet `10.0.i.0/24`.
pub fn assign_egress(ports: usize) -> Policy {
    let mut p = drop();
    for i in (1..=ports).rev() {
        p = ite(
            test_prefix(Field::DstIp, 10, 0, i as u8, 0, 24),
            modify(Field::OutPort, Value::Int(i as i64)),
            p,
        );
    }
    p
}

/// The per-ingress-port monitoring policy of §2.1: `count[inport]++`.
pub fn port_monitoring() -> Policy {
    state_incr("count", vec![field(Field::InPort)])
}

/// The operator `assumption` policy of §4.3: traffic sourced in subnet
/// `10.0.i.0/24` enters at port `i`.
pub fn assumption(ports: usize) -> Policy {
    Policy::par_all((1..=ports).map(|i| {
        filter(
            test_prefix(Field::SrcIp, 10, 0, i as u8, 0, 24)
                .and(test(Field::InPort, Value::Int(i as i64))),
        )
    }))
}

/// The honeypot network transaction of §2.1: atomically record the source IP
/// and destination port of the last packet towards the honeypot subnet.
pub fn honeypot_transaction() -> Policy {
    ite(
        test_prefix(Field::DstIp, 10, 0, 3, 0, 25),
        atomic(
            state_set("hon-ip", vec![field(Field::InPort)], field(Field::SrcIp)).seq(state_set(
                "hon-dstport",
                vec![field(Field::InPort)],
                field(Field::DstPort),
            )),
        ),
        id(),
    )
}

// ---------------------------------------------------------------------------
// Chimera-derived applications
// ---------------------------------------------------------------------------

/// Appendix F, Policy 1: flag IP addresses advertised under too many distinct
/// domain names (fast-flux style evasion).
pub fn many_ip_domains(threshold: i64) -> Policy {
    ite(
        test(Field::SrcPort, Value::Int(53)),
        ite(
            state_truthy(
                "domain-ip-pair",
                vec![field(Field::DnsRdata), field(Field::DnsQname)],
            )
            .not(),
            Policy::seq_all(vec![
                state_incr("num-of-domains", vec![field(Field::DnsRdata)]),
                state_set(
                    "domain-ip-pair",
                    vec![field(Field::DnsRdata), field(Field::DnsQname)],
                    Value::Bool(true),
                ),
                ite(
                    state_test(
                        "num-of-domains",
                        vec![field(Field::DnsRdata)],
                        int(threshold),
                    ),
                    state_set(
                        "mal-ip-list",
                        vec![field(Field::DnsRdata)],
                        Value::Bool(true),
                    ),
                    id(),
                ),
            ]),
            id(),
        ),
        id(),
    )
}

/// Appendix F, Policy 2: flag domains that resolve to too many distinct IPs.
pub fn many_domain_ips(threshold: i64) -> Policy {
    ite(
        test(Field::SrcPort, Value::Int(53)),
        ite(
            state_truthy(
                "ip-domain-pair",
                vec![field(Field::DnsQname), field(Field::DnsRdata)],
            )
            .not(),
            Policy::seq_all(vec![
                state_incr("num-of-ips", vec![field(Field::DnsQname)]),
                state_set(
                    "ip-domain-pair",
                    vec![field(Field::DnsQname), field(Field::DnsRdata)],
                    Value::Bool(true),
                ),
                ite(
                    state_test("num-of-ips", vec![field(Field::DnsQname)], int(threshold)),
                    state_set(
                        "mal-domain-list",
                        vec![field(Field::DnsQname)],
                        Value::Bool(true),
                    ),
                    id(),
                ),
            ]),
            id(),
        ),
        id(),
    )
}

/// Appendix F, Policy 4: track DNS TTL changes per domain.
pub fn dns_ttl_change() -> Policy {
    ite(
        test(Field::SrcPort, Value::Int(53)),
        ite(
            state_truthy("seen", vec![field(Field::DnsRdata)]).not(),
            Policy::seq_all(vec![
                state_set("seen", vec![field(Field::DnsRdata)], Value::Bool(true)),
                state_set(
                    "last-ttl",
                    vec![field(Field::DnsRdata)],
                    field(Field::DnsTtl),
                ),
                state_set("ttl-change", vec![field(Field::DnsRdata)], int(0)),
            ]),
            ite(
                state_test(
                    "last-ttl",
                    vec![field(Field::DnsRdata)],
                    field(Field::DnsTtl),
                ),
                id(),
                state_set(
                    "last-ttl",
                    vec![field(Field::DnsRdata)],
                    field(Field::DnsTtl),
                )
                .seq(state_incr("ttl-change", vec![field(Field::DnsRdata)])),
            ),
        ),
        id(),
    )
}

/// Appendix F, Policy 8: sidejacking detection — a session id may only be
/// used from the client IP and user agent that created it.
pub fn sidejack_detection(server: Value) -> Policy {
    ite(
        test(Field::DstIp, server).and(test(Field::SessionId, Value::sym("null")).not()),
        ite(
            state_truthy("active-session", vec![field(Field::SessionId)]),
            ite(
                state_test("sid2ip", vec![field(Field::SessionId)], field(Field::SrcIp)).and(
                    state_test(
                        "sid2agent",
                        vec![field(Field::SessionId)],
                        field(Field::HttpUserAgent),
                    ),
                ),
                id(),
                drop(),
            ),
            atomic(Policy::seq_all(vec![
                state_set(
                    "active-session",
                    vec![field(Field::SessionId)],
                    Value::Bool(true),
                ),
                state_set("sid2ip", vec![field(Field::SessionId)], field(Field::SrcIp)),
                state_set(
                    "sid2agent",
                    vec![field(Field::SessionId)],
                    field(Field::HttpUserAgent),
                ),
            ])),
        ),
        id(),
    )
}

/// Phishing/spam detection (Appendix F, Policy 6): track new mail transfer
/// agents and flag the ones that send too much mail in their first day.
pub fn spam_detection(threshold: i64) -> Policy {
    ite(
        state_test("MTA-dir", vec![field(Field::SmtpMta)], sym("Unknown")),
        state_set("MTA-dir", vec![field(Field::SmtpMta)], sym("Tracked")).seq(state_set(
            "mail-counter",
            vec![field(Field::SmtpMta)],
            int(0),
        )),
        id(),
    )
    .seq(ite(
        state_test("MTA-dir", vec![field(Field::SmtpMta)], sym("Tracked")),
        state_incr("mail-counter", vec![field(Field::SmtpMta)]).seq(ite(
            state_test("mail-counter", vec![field(Field::SmtpMta)], int(threshold)),
            state_set("MTA-dir", vec![field(Field::SmtpMta)], sym("Spammer")),
            id(),
        )),
        id(),
    ))
}

// ---------------------------------------------------------------------------
// FAST-derived applications
// ---------------------------------------------------------------------------

/// Appendix F, Policy 3: a stateful firewall protecting subnet `10.0.6.0/24`
/// — only connections initiated from inside are allowed back in.
pub fn stateful_firewall() -> Policy {
    ite(
        test_prefix(Field::SrcIp, 10, 0, 6, 0, 24),
        state_set(
            "established",
            vec![field(Field::SrcIp), field(Field::DstIp)],
            Value::Bool(true),
        ),
        ite(
            test_prefix(Field::DstIp, 10, 0, 6, 0, 24),
            ite(
                state_truthy(
                    "established",
                    vec![field(Field::DstIp), field(Field::SrcIp)],
                ),
                id(),
                drop(),
            ),
            id(),
        ),
    )
}

/// Appendix F, Policy 5: FTP monitoring — data-channel traffic is allowed
/// only after the control channel announced the data port.
pub fn ftp_monitoring() -> Policy {
    ite(
        test(Field::DstPort, Value::Int(21)),
        state_set(
            "ftp-data-chan",
            vec![
                field(Field::SrcIp),
                field(Field::DstIp),
                field(Field::FtpPort),
            ],
            Value::Bool(true),
        ),
        ite(
            test(Field::SrcPort, Value::Int(20)),
            ite(
                state_truthy(
                    "ftp-data-chan",
                    vec![
                        field(Field::DstIp),
                        field(Field::SrcIp),
                        field(Field::FtpPort),
                    ],
                ),
                id(),
                drop(),
            ),
            id(),
        ),
    )
}

/// Appendix F, Policy 7: heavy-hitter detection on TCP SYNs.
pub fn heavy_hitter_detection(threshold: i64) -> Policy {
    ite(
        test(Field::TcpFlags, Value::sym("SYN"))
            .and(state_truthy("heavy-hitter", vec![field(Field::SrcIp)]).not()),
        state_incr("hh-counter", vec![field(Field::SrcIp)]).seq(ite(
            state_test("hh-counter", vec![field(Field::SrcIp)], int(threshold)),
            state_set("heavy-hitter", vec![field(Field::SrcIp)], Value::Bool(true)),
            id(),
        )),
        id(),
    )
}

/// Heavy-hitter detection combined with blocking of flagged sources.
pub fn heavy_hitter_blocking(threshold: i64) -> Policy {
    heavy_hitter_detection(threshold).seq(ite(
        state_truthy("heavy-hitter", vec![field(Field::SrcIp)]),
        drop(),
        id(),
    ))
}

/// Appendix F, Policy 9: super-spreader detection (SYN/FIN imbalance).
pub fn super_spreader_detection(threshold: i64) -> Policy {
    ite(
        test(Field::TcpFlags, Value::sym("SYN")),
        state_incr("spreader", vec![field(Field::SrcIp)]).seq(ite(
            state_test("spreader", vec![field(Field::SrcIp)], int(threshold)),
            state_set(
                "super-spreader",
                vec![field(Field::SrcIp)],
                Value::Bool(true),
            ),
            id(),
        )),
        ite(
            test(Field::TcpFlags, Value::sym("FIN")),
            state_decr("spreader", vec![field(Field::SrcIp)]),
            id(),
        ),
    )
}

/// Appendix F, Policy 10: classify flows as SMALL / MEDIUM / LARGE by packet
/// count (`small_at`/`medium_at`/`large_at` are the size boundaries).
pub fn flow_size_detect(small_at: i64, medium_at: i64, large_at: i64) -> Policy {
    state_incr("flow-size", flow_index()).seq(ite(
        state_test("flow-size", flow_index(), int(small_at)),
        state_set("flow-type", flow_index(), sym("SMALL")),
        ite(
            state_test("flow-size", flow_index(), int(medium_at)),
            state_set("flow-type", flow_index(), sym("MEDIUM")),
            ite(
                state_test("flow-size", flow_index(), int(large_at)),
                state_set("flow-type", flow_index(), sym("LARGE")),
                id(),
            ),
        ),
    ))
}

/// Appendix F, Policies 12–14: pass one packet out of `rate` per flow.
pub fn sampler(name: &str, rate: i64) -> Policy {
    let var = format!("{name}-sampler");
    state_incr(var.as_str(), flow_index()).seq(ite(
        state_test(var.as_str(), flow_index(), int(rate)),
        state_set(var.as_str(), flow_index(), int(0)),
        drop(),
    ))
}

/// Appendix F, Policy 11: sampling with a rate chosen by flow size.
pub fn sampling_based_flow_size() -> Policy {
    flow_size_detect(1, 100, 1000).seq(ite(
        state_test("flow-type", flow_index(), sym("SMALL")),
        sampler("small", 5),
        ite(
            state_test("flow-type", flow_index(), sym("MEDIUM")),
            sampler("medium", 50),
            sampler("large", 500),
        ),
    ))
}

/// Appendix F, Policy 15: drop differentially-encoded MPEG B frames whose
/// preceding I frame was dropped.
pub fn selective_packet_dropping() -> Policy {
    let idx = vec![
        field(Field::SrcIp),
        field(Field::DstIp),
        field(Field::SrcPort),
        field(Field::DstPort),
    ];
    ite(
        test(Field::MpegFrameType, Value::sym("Iframe")),
        state_set("dep-count", idx.clone(), int(14)),
        ite(
            state_test("dep-count", idx.clone(), int(0)),
            drop(),
            state_decr("dep-count", idx),
        ),
    )
}

/// Appendix F, Policy 16: connection affinity — established connections keep
/// their assignment (`lb` is the load-balancing policy applied to them).
pub fn connection_affinity(lb: Policy) -> Policy {
    ite(
        state_test("tcp-state", reverse_flow_index(), sym("ESTABLISHED")).or(state_test(
            "tcp-state",
            flow_index(),
            sym("ESTABLISHED"),
        )),
        lb,
        id(),
    )
}

// ---------------------------------------------------------------------------
// Bohatei-derived applications
// ---------------------------------------------------------------------------

/// SYN-flood detection: count SYNs without matching ACKs per source and flag
/// sources crossing the threshold (structured like Policy 9).
pub fn syn_flood_detection(threshold: i64) -> Policy {
    ite(
        test(Field::TcpFlags, Value::sym("SYN")),
        state_incr("syn-count", vec![field(Field::SrcIp)]).seq(ite(
            state_test("syn-count", vec![field(Field::SrcIp)], int(threshold)),
            state_set("syn-flooder", vec![field(Field::SrcIp)], Value::Bool(true)),
            id(),
        )),
        ite(
            test(Field::TcpFlags, Value::sym("ACK")),
            state_decr("syn-count", vec![field(Field::DstIp)]),
            id(),
        ),
    )
}

/// Appendix F, Policy 17: DNS amplification mitigation — only DNS responses
/// matching a request the protected host actually sent are allowed.
pub fn dns_amplification_mitigation() -> Policy {
    ite(
        test(Field::DstPort, Value::Int(53)),
        state_set(
            "benign-request",
            vec![field(Field::SrcIp), field(Field::DstIp)],
            Value::Bool(true),
        ),
        ite(
            test(Field::SrcPort, Value::Int(53)).and(
                state_truthy(
                    "benign-request",
                    vec![field(Field::DstIp), field(Field::SrcIp)],
                )
                .not(),
            ),
            drop(),
            id(),
        ),
    )
}

/// Appendix F, Policy 18: UDP flood mitigation.
pub fn udp_flood_mitigation(threshold: i64) -> Policy {
    ite(
        test(Field::Proto, Value::Int(17))
            .and(state_truthy("udp-flooder", vec![field(Field::SrcIp)]).not()),
        state_incr("udp-counter", vec![field(Field::SrcIp)]).seq(ite(
            state_test("udp-counter", vec![field(Field::SrcIp)], int(threshold)),
            state_set("udp-flooder", vec![field(Field::SrcIp)], Value::Bool(true)).seq(drop()),
            id(),
        )),
        ite(
            test(Field::Proto, Value::Int(17))
                .and(state_truthy("udp-flooder", vec![field(Field::SrcIp)])),
            drop(),
            id(),
        ),
    )
}

/// Elephant-flow detection: classify flows by size and sample the large ones
/// (the composition the paper suggests: `flow-size-detect; sample-large`).
pub fn elephant_flow_detection() -> Policy {
    flow_size_detect(1, 100, 1000).seq(sampler("large", 500))
}

// ---------------------------------------------------------------------------
// Others
// ---------------------------------------------------------------------------

/// Appendix F, Policy 19: the Snort flowbits idiom — mark Kindle clients on
/// established outbound web connections.
pub fn snort_flowbits() -> Policy {
    Policy::seq_all(vec![
        filter(test_prefix(Field::SrcIp, 10, 0, 0, 0, 8)),
        filter(test_prefix(Field::DstIp, 0, 0, 0, 0, 0)),
        filter(test(Field::DstPort, Value::Int(80))),
        filter(state_test("established", flow_index(), Value::Bool(true))),
        filter(test(Field::Content, Value::str("Kindle/3.0+"))),
        state_set("kindle", flow_index(), Value::Bool(true)),
    ])
}

/// Appendix F, Policy 20: a bump-on-the-wire TCP state machine.
pub fn tcp_state_machine() -> Policy {
    let fwd = flow_index();
    let rev = reverse_flow_index();
    let flags = |f: &str| test(Field::TcpFlags, Value::sym(f));
    let st_is = |idx: &Vec<Expr>, s: &str| state_test("tcp-state", idx.clone(), sym(s));
    let st_set = |idx: &Vec<Expr>, s: &str| state_set("tcp-state", idx.clone(), sym(s));

    ite(
        flags("SYN").and(state_test("tcp-state", fwd.clone(), int(0))),
        st_set(&fwd, "SYN-SENT"),
        ite(
            flags("SYN-ACK").and(st_is(&rev, "SYN-SENT")),
            st_set(&rev, "SYN-RECEIVED"),
            ite(
                flags("ACK").and(st_is(&fwd, "SYN-RECEIVED")),
                st_set(&fwd, "ESTABLISHED"),
                ite(
                    flags("FIN").and(st_is(&fwd, "ESTABLISHED")),
                    st_set(&fwd, "FIN-WAIT"),
                    ite(
                        flags("FIN-ACK").and(st_is(&rev, "FIN-WAIT")),
                        st_set(&rev, "FIN-WAIT2"),
                        ite(
                            flags("ACK").and(st_is(&fwd, "FIN-WAIT2")),
                            st_set(&fwd, "CLOSED"),
                            ite(
                                flags("RST").and(st_is(&rev, "ESTABLISHED")),
                                st_set(&rev, "CLOSED"),
                                id(),
                            ),
                        ),
                    ),
                ),
            ),
        ),
    )
}

/// A named catalogue of the Table 3 applications (with small default
/// thresholds so they are cheap to exercise in tests and benchmarks).
pub fn catalogue() -> Vec<(&'static str, Policy)> {
    vec![
        ("many-ip-domains", many_ip_domains(10)),
        ("many-domain-ips", many_domain_ips(10)),
        ("dns-ttl-change", dns_ttl_change()),
        ("dns-tunnel-detect", dns_tunnel_detect(10)),
        (
            "sidejack-detection",
            sidejack_detection(Value::ip(10, 0, 6, 80)),
        ),
        ("spam-detection", spam_detection(20)),
        ("stateful-firewall", stateful_firewall()),
        ("ftp-monitoring", ftp_monitoring()),
        ("heavy-hitter-detection", heavy_hitter_detection(10)),
        ("super-spreader-detection", super_spreader_detection(10)),
        ("sampling-based-flow-size", sampling_based_flow_size()),
        ("selective-packet-dropping", selective_packet_dropping()),
        (
            "connection-affinity",
            connection_affinity(modify(Field::OutPort, Value::Int(1))),
        ),
        ("syn-flood-detection", syn_flood_detection(10)),
        (
            "dns-amplification-mitigation",
            dns_amplification_mitigation(),
        ),
        ("udp-flood-mitigation", udp_flood_mitigation(10)),
        ("elephant-flow-detection", elephant_flow_detection()),
        ("port-monitoring", port_monitoring()),
        ("snort-flowbits", snort_flowbits()),
        ("tcp-state-machine", tcp_state_machine()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_lang::eval::eval_trace;
    use snap_lang::{Packet, StateVar, Store};

    #[test]
    fn catalogue_has_twenty_applications_and_all_compile_to_xfdds() {
        let apps = catalogue();
        assert_eq!(apps.len(), 20);
        for (name, policy) in &apps {
            let xfdd = snap_xfdd::compile(policy)
                .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
            assert!(
                xfdd.is_well_formed(),
                "{name} produced an ill-formed diagram"
            );
        }
    }

    #[test]
    fn catalogue_uses_thirty_plus_state_variables_in_total() {
        // The paper reports 35 state variables across the 20 policies; our
        // transcription is in the same ballpark.
        let total: usize = catalogue().iter().map(|(_, p)| p.state_vars().len()).sum();
        assert!(
            total >= 30,
            "expected at least 30 state variables, got {total}"
        );
    }

    #[test]
    fn stateful_firewall_blocks_unsolicited_inbound_traffic() {
        let p = stateful_firewall();
        let inside = Value::ip(10, 0, 6, 10);
        let outside = Value::ip(93, 184, 216, 34);
        let inbound = Packet::new()
            .with(Field::SrcIp, outside.clone())
            .with(Field::DstIp, inside.clone());
        let outbound = Packet::new()
            .with(Field::SrcIp, inside)
            .with(Field::DstIp, outside);
        let (_, outs) =
            eval_trace(&p, &Store::new(), &[inbound.clone(), outbound, inbound]).unwrap();
        assert!(
            outs[0].is_empty(),
            "unsolicited inbound packet must be dropped"
        );
        assert_eq!(outs[1].len(), 1, "outbound packet passes");
        assert_eq!(outs[2].len(), 1, "return traffic is now allowed");
    }

    #[test]
    fn heavy_hitter_is_flagged_after_threshold_syns() {
        let p = heavy_hitter_blocking(3);
        let syn = Packet::new()
            .with(Field::TcpFlags, Value::sym("SYN"))
            .with(Field::SrcIp, Value::ip(1, 2, 3, 4));
        let pkts = vec![syn.clone(); 5];
        let (store, outs) = eval_trace(&p, &Store::new(), &pkts).unwrap();
        assert_eq!(
            store.get(&StateVar::new("heavy-hitter"), &[Value::ip(1, 2, 3, 4)]),
            Value::Bool(true)
        );
        // Packets 1-2 pass, packet 3 trips the threshold and is dropped, and
        // everything after stays dropped.
        assert_eq!(outs[0].len(), 1);
        assert_eq!(outs[1].len(), 1);
        assert!(outs[2].is_empty());
        assert!(outs[4].is_empty());
    }

    #[test]
    fn dns_amplification_blocks_unsolicited_responses() {
        let p = dns_amplification_mitigation();
        let victim = Value::ip(10, 0, 2, 2);
        let resolver = Value::ip(8, 8, 8, 8);
        let unsolicited = Packet::new()
            .with(Field::SrcIp, resolver.clone())
            .with(Field::DstIp, victim.clone())
            .with(Field::SrcPort, 53)
            .with(Field::DstPort, 9999);
        let request = Packet::new()
            .with(Field::SrcIp, victim.clone())
            .with(Field::DstIp, resolver.clone())
            .with(Field::SrcPort, 9999)
            .with(Field::DstPort, 53);
        let response = Packet::new()
            .with(Field::SrcIp, resolver)
            .with(Field::DstIp, victim)
            .with(Field::SrcPort, 53)
            .with(Field::DstPort, 9999);
        let (_, outs) = eval_trace(&p, &Store::new(), &[unsolicited, request, response]).unwrap();
        assert!(outs[0].is_empty());
        assert_eq!(outs[1].len(), 1);
        assert_eq!(outs[2].len(), 1);
    }

    #[test]
    fn udp_flood_source_is_cut_off() {
        let p = udp_flood_mitigation(3);
        let udp = Packet::new()
            .with(Field::Proto, 17)
            .with(Field::SrcIp, Value::ip(6, 6, 6, 6));
        let (store, outs) = eval_trace(&p, &Store::new(), &vec![udp; 5]).unwrap();
        assert_eq!(
            store.get(&StateVar::new("udp-flooder"), &[Value::ip(6, 6, 6, 6)]),
            Value::Bool(true)
        );
        assert!(
            outs[2].is_empty(),
            "the packet crossing the threshold is dropped"
        );
        assert!(outs[3].is_empty(), "flagged sources stay blocked");
        assert!(outs[4].is_empty());
    }

    #[test]
    fn tcp_state_machine_reaches_established() {
        let p = tcp_state_machine();
        let client = Value::ip(10, 0, 1, 1);
        let server = Value::ip(10, 0, 2, 2);
        let base = Packet::new()
            .with(Field::SrcIp, client.clone())
            .with(Field::DstIp, server.clone())
            .with(Field::SrcPort, 5555)
            .with(Field::DstPort, 80)
            .with(Field::Proto, 6);
        let reverse = Packet::new()
            .with(Field::SrcIp, server.clone())
            .with(Field::DstIp, client.clone())
            .with(Field::SrcPort, 80)
            .with(Field::DstPort, 5555)
            .with(Field::Proto, 6);
        let trace = vec![
            base.clone().with(Field::TcpFlags, Value::sym("SYN")),
            reverse.with(Field::TcpFlags, Value::sym("SYN-ACK")),
            base.with(Field::TcpFlags, Value::sym("ACK")),
        ];
        let (store, _) = eval_trace(&p, &Store::new(), &trace).unwrap();
        let key = vec![
            client,
            server,
            Value::Int(5555),
            Value::Int(80),
            Value::Int(6),
        ];
        assert_eq!(
            store.get(&StateVar::new("tcp-state"), &key),
            Value::sym("ESTABLISHED")
        );
    }

    #[test]
    fn sampler_passes_one_in_rate() {
        let p = sampler("small", 3);
        let pkt = Packet::new()
            .with(Field::SrcIp, Value::ip(1, 1, 1, 1))
            .with(Field::DstIp, Value::ip(2, 2, 2, 2))
            .with(Field::SrcPort, 10)
            .with(Field::DstPort, 20)
            .with(Field::Proto, 6);
        let (_, outs) = eval_trace(&p, &Store::new(), &vec![pkt; 6]).unwrap();
        let passed: usize = outs.iter().map(|o| o.len()).sum();
        assert_eq!(passed, 2, "exactly every third packet is sampled");
    }

    #[test]
    fn assign_egress_and_assumption_cover_all_ports() {
        let egress = assign_egress(6);
        let pkt = Packet::new().with(Field::DstIp, Value::ip(10, 0, 4, 9));
        let r = snap_lang::eval(&egress, &Store::new(), &pkt).unwrap();
        assert_eq!(
            r.packets.iter().next().unwrap().get(&Field::OutPort),
            Some(&Value::Int(4))
        );
        let assume = assumption(6);
        let good = Packet::new()
            .with(Field::SrcIp, Value::ip(10, 0, 3, 1))
            .with(Field::InPort, 3);
        let bad = Packet::new()
            .with(Field::SrcIp, Value::ip(10, 0, 3, 1))
            .with(Field::InPort, 5);
        assert_eq!(
            snap_lang::eval(&assume, &Store::new(), &good)
                .unwrap()
                .packets
                .len(),
            1
        );
        assert!(snap_lang::eval(&assume, &Store::new(), &bad)
            .unwrap()
            .packets
            .is_empty());
    }

    #[test]
    fn honeypot_transaction_records_last_packet_atomically() {
        let p = honeypot_transaction();
        let pkt = Packet::new()
            .with(Field::SrcIp, Value::ip(4, 4, 4, 4))
            .with(Field::DstIp, Value::ip(10, 0, 3, 9))
            .with(Field::DstPort, 2222)
            .with(Field::InPort, 1);
        let (store, _) = eval_trace(&p, &Store::new(), &[pkt]).unwrap();
        assert_eq!(
            store.get(&StateVar::new("hon-ip"), &[Value::Int(1)]),
            Value::ip(4, 4, 4, 4)
        );
        assert_eq!(
            store.get(&StateVar::new("hon-dstport"), &[Value::Int(1)]),
            Value::Int(2222)
        );
        // Dependency analysis must tie the two variables together.
        let deps = snap_xfdd::StateDependencies::analyze(&p);
        assert!(deps.co_located(&StateVar::new("hon-ip"), &StateVar::new("hon-dstport")));
    }

    #[test]
    fn flow_size_detect_classifies_by_count() {
        let p = flow_size_detect(1, 3, 5);
        let pkt = Packet::new()
            .with(Field::SrcIp, Value::ip(1, 1, 1, 1))
            .with(Field::DstIp, Value::ip(2, 2, 2, 2))
            .with(Field::SrcPort, 10)
            .with(Field::DstPort, 20)
            .with(Field::Proto, 6);
        let key = vec![
            Value::ip(1, 1, 1, 1),
            Value::ip(2, 2, 2, 2),
            Value::Int(10),
            Value::Int(20),
            Value::Int(6),
        ];
        let (store, _) = eval_trace(&p, &Store::new(), &vec![pkt.clone(); 1]).unwrap();
        assert_eq!(
            store.get(&StateVar::new("flow-type"), &key),
            Value::sym("SMALL")
        );
        let (store, _) = eval_trace(&p, &Store::new(), &vec![pkt.clone(); 3]).unwrap();
        assert_eq!(
            store.get(&StateVar::new("flow-type"), &key),
            Value::sym("MEDIUM")
        );
        let (store, _) = eval_trace(&p, &Store::new(), &vec![pkt; 5]).unwrap();
        assert_eq!(
            store.get(&StateVar::new("flow-type"), &key),
            Value::sym("LARGE")
        );
    }

    #[test]
    fn super_spreader_counts_syn_minus_fin() {
        let p = super_spreader_detection(3);
        let syn = Packet::new()
            .with(Field::TcpFlags, Value::sym("SYN"))
            .with(Field::SrcIp, Value::ip(9, 9, 9, 9));
        let fin = syn.clone().updated(Field::TcpFlags, Value::sym("FIN"));
        // Two SYNs, one FIN, two SYNs -> counter reaches 3 -> flagged.
        let trace = vec![syn.clone(), syn.clone(), fin, syn.clone(), syn];
        let (store, _) = eval_trace(&p, &Store::new(), &trace).unwrap();
        assert_eq!(
            store.get(&StateVar::new("super-spreader"), &[Value::ip(9, 9, 9, 9)]),
            Value::Bool(true)
        );
    }
}
