//! Property tests of [`EgressQueues`] under the unified driver, with the
//! in-process `Network` (not just the distributed plane) delivering through
//! them: conservation of deliveries into enqueue/tail-drop counters,
//! bounded depth, per-port FIFO order across drains, and order preservation
//! per (ingress, egress) pair — including under a multi-worker
//! `TrafficEngine`.

use proptest::prelude::*;
use snap_dataplane::{EgressQueues, Network, QueuedNetwork, SwitchConfig, TrafficEngine};
use snap_lang::builder::*;
use snap_lang::{Field, Packet, Value};
use snap_topology::generators::campus;
use snap_topology::PortId;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// The campus network of the traffic tests: count per srcport, route by
/// destination prefix to port 6 or port 1, state pinned on C6.
fn counting_network() -> Network {
    let policy = state_incr("count", vec![field(Field::SrcPort)]).seq(ite(
        test_prefix(Field::DstIp, 10, 0, 6, 0, 24),
        modify(Field::OutPort, Value::Int(6)),
        modify(Field::OutPort, Value::Int(1)),
    ));
    let topo = campus();
    let program = snap_xfdd::compile(&policy).unwrap();
    let owners = BTreeMap::from([(
        topo.node_by_name("C6").unwrap(),
        BTreeSet::from(["count".into()]),
    )]);
    let configs = SwitchConfig::for_topology(&topo, &program, &owners);
    Network::new(topo, configs)
}

fn queues_for(net: &Network, capacity: usize) -> EgressQueues {
    EgressQueues::new(net.topology().external_ports().map(|(p, _)| p), capacity)
}

/// `n` packets over round-robin ingress ports with a worker/sequence tag in
/// (srcport, dstport) so drains can check per-source order.
fn workload(n: usize) -> Vec<(PortId, Packet)> {
    (0..n)
        .map(|i| {
            (
                PortId(1 + i % 6),
                Packet::new()
                    .with(Field::SrcPort, (i % 6) as i64)
                    .with(Field::DstPort, i as i64)
                    .with(
                        Field::DstIp,
                        Value::ip(10, 0, if i % 3 == 0 { 6 } else { 2 }, 1),
                    ),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn deliveries_are_conserved_into_enqueues_and_tail_drops(
        capacity in 1usize..40,
        n in 1usize..120,
        batch in 1usize..32,
    ) {
        let net = counting_network();
        let queues = queues_for(&net, capacity);
        let load = workload(n);
        let mut delivered_per_port: BTreeMap<PortId, u64> = BTreeMap::new();
        let mut reported_drops = 0u64;
        for chunk in load.chunks(batch) {
            let out = net.inject_batch_queued(chunk, &queues);
            reported_drops += out.backpressure_drops;
            for result in &out.outputs {
                let list = result.as_ref().expect("workload packets never fail");
                prop_assert_eq!(list.len(), 1, "exactly one egress per packet");
                for (port, _) in list {
                    *delivered_per_port.entry(*port).or_default() += 1;
                }
            }
        }
        // Per port: every delivery either sits in the queue (bounded by
        // capacity) or was tail-dropped and counted; nothing vanishes.
        let mut total_drops = 0u64;
        for (&port, &delivered) in &delivered_per_port {
            prop_assert!(queues.depth(port) <= capacity);
            prop_assert_eq!(queues.enqueued(port) + queues.dropped(port), delivered);
            total_drops += queues.dropped(port);
        }
        prop_assert_eq!(reported_drops, total_drops);
        prop_assert_eq!(
            queues.total_enqueued() + queues.total_dropped(),
            delivered_per_port.values().sum::<u64>()
        );
    }

    #[test]
    fn per_port_fifo_and_per_source_order_survive_batched_execution(
        n in 2usize..100,
        batch in 1usize..32,
    ) {
        // Ample capacity: this property is about order, not drops.
        let net = counting_network();
        let queues = queues_for(&net, 4096);
        let load = workload(n);
        for chunk in load.chunks(batch) {
            let out = net.inject_batch_queued(chunk, &queues);
            prop_assert_eq!(out.backpressure_drops, 0);
        }
        for (_, events) in queues.drain_all() {
            let mut last_seq = None;
            let mut last_per_source: BTreeMap<i64, i64> = BTreeMap::new();
            for e in &events {
                // Global per-port FIFO by sequence number.
                prop_assert!(last_seq.is_none_or(|s| e.seq > s));
                last_seq = Some(e.seq);
                // Packets sharing an (ingress, egress) pair follow the same
                // path through the batched driver, so they drain in
                // injection order.
                let source = match e.packet.get(&Field::SrcPort) {
                    Some(Value::Int(s)) => *s,
                    other => panic!("missing source tag: {other:?}"),
                };
                let seq_in_source = match e.packet.get(&Field::DstPort) {
                    Some(Value::Int(i)) => *i,
                    other => panic!("missing order tag: {other:?}"),
                };
                if let Some(prev) = last_per_source.get(&source) {
                    prop_assert!(
                        seq_in_source > *prev,
                        "per-source order violated: {} after {}",
                        seq_in_source,
                        prev
                    );
                }
                last_per_source.insert(source, seq_in_source);
            }
        }
    }

    #[test]
    fn multi_worker_engine_through_queues_conserves_and_orders(
        workers in 2usize..5,
        batch in 1usize..24,
        capacity in 4usize..64,
    ) {
        let net = counting_network();
        let queues = queues_for(&net, capacity);
        let load = workload(96);
        let report = TrafficEngine::new(workers)
            .with_batch_size(batch)
            .run(&QueuedNetwork::new(&net, &queues), &load);
        prop_assert!(report.is_clean());
        prop_assert_eq!(report.processed, load.len());
        // Conservation across concurrent workers: every egress event the
        // report saw was either enqueued or tail-dropped, exactly once.
        prop_assert_eq!(
            queues.total_enqueued() + queues.total_dropped(),
            report.total_egress() as u64
        );
        for port in queues.ports().collect::<Vec<_>>() {
            prop_assert!(queues.depth(port) <= capacity);
        }
        // Per-port FIFO still holds under concurrency.
        for (_, events) in queues.drain_all() {
            let mut last_seq = None;
            for e in &events {
                prop_assert!(last_seq.is_none_or(|s| e.seq > s));
                last_seq = Some(e.seq);
            }
        }
    }
}
