//! A NetASM-like instruction set for stateful data planes.
//!
//! The SNAP prototype emits NetASM — an assembly-style intermediate
//! representation for programmable data planes — for each switch (§5): a
//! branch instruction per xFDD test node, table lookups for state variables
//! and store instructions for leaf actions, with atomic execution of the
//! stateful portions. NetASM itself is an external research artifact, so this
//! module provides an equivalent instruction set, a lowering from hash-consed
//! xFDDs, and an interpreter with the same observable behaviour.
//!
//! Lowering consumes the dense [`FlatProgram`] representation (the same one
//! the network simulator executes): every *distinct* node emits exactly one
//! block, so subdiagrams shared in the arena are shared in the instruction
//! stream too (branches jump to the single copy), and the flat branch index
//! maps directly onto the instruction offset.

use serde::{Deserialize, Serialize};
use snap_lang::{EvalError, Expr, Field, Packet, StateVar, Store, Value};
use snap_xfdd::{eval_test, ActionSeq, FlatId, FlatNode, FlatProgram, Test, Xfdd};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One instruction of the data-plane program. Jump targets are instruction
/// indices within the same program.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Instruction {
    /// Branch on a header/state test: continue at `on_true` or `on_false`.
    Branch {
        /// The test to evaluate (state tests read the switch's local tables).
        test: Test,
        /// Target when the test passes.
        on_true: usize,
        /// Target when the test fails.
        on_false: usize,
    },
    /// Write a constant into a header field.
    SetField(Field, Value),
    /// `s[e] ← e` against the local state table.
    StateSet {
        /// Variable written.
        var: StateVar,
        /// Index expressions.
        index: Vec<Expr>,
        /// Value expression.
        value: Expr,
    },
    /// `s[e] += delta` against the local state table.
    StateAdd {
        /// Variable written.
        var: StateVar,
        /// Index expressions.
        index: Vec<Expr>,
        /// Signed amount (+1 for `++`, -1 for `--`).
        delta: i64,
    },
    /// Emit (a copy of) the current packet.
    Emit,
    /// Drop the current packet copy.
    Drop,
    /// Restore the working packet to the packet as it entered the program
    /// (used at the start of each parallel action sequence of a leaf).
    Restore,
    /// Unconditional jump.
    Jump(usize),
    /// End of the program.
    Halt,
}

/// A data-plane program: straight-line instructions with branches.
///
/// The instruction stream is shared between clones: rule generation hands
/// the same lowered program to every switch, and a compiler session caches
/// whole compiled versions, so cloning a program is an `Arc` bump rather
/// than a copy of the instruction vector.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NetAsmProgram {
    instructions: Arc<Vec<Instruction>>,
}

impl NetAsmProgram {
    /// The instructions.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Is the program empty?
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Number of branch instructions (≈ match stages needed on a switch).
    pub fn num_branches(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i, Instruction::Branch { .. }))
            .count()
    }

    /// Number of stateful instructions.
    pub fn num_state_ops(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Instruction::StateSet { .. } | Instruction::StateAdd { .. }
                ) || matches!(
                    i,
                    Instruction::Branch {
                        test: Test::State { .. },
                        ..
                    }
                )
            })
            .count()
    }

    /// Lower an xFDD to instructions by flattening it first (see
    /// [`Self::lower_flat`]).
    pub fn lower(program: &Xfdd) -> NetAsmProgram {
        Self::lower_flat(&program.flatten())
    }

    /// Lower a flat program to instructions.
    ///
    /// Every flat branch node becomes exactly one [`Instruction::Branch`];
    /// every flat leaf becomes one straight-line block per action sequence,
    /// ending in `Emit` or `Drop`. Sharing in the flat program (one entry
    /// per *distinct* xFDD node) is sharing in the instruction stream. The
    /// layout mirrors the flat arrays: instruction `0` jumps to the root's
    /// block, branches occupy one instruction each at offsets `1..=B` (the
    /// branch index *is* the offset minus one), and leaf blocks follow. The
    /// whole program executes atomically per packet, mirroring NetASM's
    /// atomic table updates.
    pub fn lower_flat(flat: &FlatProgram) -> NetAsmProgram {
        let branches = flat.num_branches();
        // Leaf block offsets: computed by scanning leaf sizes once.
        let mut leaf_offsets = Vec::with_capacity(flat.num_leaves());
        let mut at = 1 + branches;
        for li in 0..flat.num_leaves() {
            leaf_offsets.push(at);
            let leaf = flat.leaf(flat.leaf_id(li));
            if leaf.seqs.is_empty() {
                at += 1; // Drop
            } else {
                for (i, seq) in leaf.seqs.iter().enumerate() {
                    at += usize::from(i > 0); // Restore
                    at += seq.actions.len() + 1; // actions + Emit/Drop
                }
            }
            at += 1; // Halt
        }
        let offset_of = |id: FlatId| -> usize {
            if id.is_leaf() {
                leaf_offsets[id.leaf_index()]
            } else {
                1 + id.branch_index()
            }
        };

        let mut out = Vec::with_capacity(at);
        out.push(Instruction::Jump(offset_of(flat.root())));
        for bi in 0..branches {
            match flat.node(flat.branch_id(bi)) {
                FlatNode::Branch { test, tru, fls, .. } => out.push(Instruction::Branch {
                    test: test.clone(),
                    on_true: offset_of(tru),
                    on_false: offset_of(fls),
                }),
                FlatNode::Leaf(_) => unreachable!("branch ids resolve to branches"),
            }
        }
        for (li, offset) in leaf_offsets.iter().enumerate() {
            debug_assert_eq!(out.len(), *offset);
            let leaf = flat.leaf(flat.leaf_id(li));
            if leaf.seqs.is_empty() {
                out.push(Instruction::Drop);
            } else {
                for (i, seq) in leaf.seqs.iter().enumerate() {
                    if i > 0 {
                        // Each parallel sequence starts from the packet as
                        // it reached the leaf.
                        out.push(Instruction::Restore);
                    }
                    lower_seq(seq, &mut out);
                }
            }
            out.push(Instruction::Halt);
        }
        NetAsmProgram {
            instructions: Arc::new(out),
        }
    }

    /// Execute the program on one packet against a store, returning the set
    /// of emitted packets and the updated store.
    pub fn execute(
        &self,
        pkt: &Packet,
        store: &Store,
    ) -> Result<(BTreeSet<Packet>, Store), EvalError> {
        let mut outputs = BTreeSet::new();
        let mut store = store.clone();
        let original = pkt.clone();
        let mut pkt = pkt.clone();
        let mut pc = 0usize;
        let mut steps = 0usize;
        while pc < self.instructions.len() {
            steps += 1;
            assert!(
                steps <= self.instructions.len() * 4 + 16,
                "runaway data-plane program"
            );
            match &self.instructions[pc] {
                Instruction::Branch {
                    test,
                    on_true,
                    on_false,
                } => {
                    pc = if eval_test(test, &pkt, &store)? {
                        *on_true
                    } else {
                        *on_false
                    };
                }
                Instruction::SetField(f, v) => {
                    pkt.set(f.clone(), v.clone());
                    pc += 1;
                }
                Instruction::StateSet { var, index, value } => {
                    let idx = snap_lang::eval_index(index, &pkt)?;
                    let val = snap_lang::eval_expr(value, &pkt)?;
                    store.set(var, idx, val);
                    pc += 1;
                }
                Instruction::StateAdd { var, index, delta } => {
                    let idx = snap_lang::eval_index(index, &pkt)?;
                    let cur = store.get(var, &idx);
                    let next = cur.as_int().ok_or(EvalError::NotAnInteger {
                        var: var.clone(),
                        value: cur.clone(),
                    })?;
                    store.set(var, idx, Value::Int(next + delta));
                    pc += 1;
                }
                Instruction::Emit => {
                    outputs.insert(pkt.clone());
                    pc += 1;
                }
                Instruction::Drop => {
                    pc += 1;
                }
                Instruction::Restore => {
                    pkt = original.clone();
                    pc += 1;
                }
                Instruction::Jump(t) => pc = *t,
                Instruction::Halt => break,
            }
        }
        Ok((outputs, store))
    }
}

/// Lower one action sequence. Each sequence runs on its own copy of the
/// packet header, which the interpreter models by resetting fields: since
/// sequences of a leaf come from parallel branches, they may set different
/// fields, so we snapshot/restore by re-emitting SetField instructions per
/// sequence. The interpreter executes sequences back to back on the same
/// packet; to keep them independent we rely on the compiler invariant that
/// parallel sequences write disjoint state variables and that field
/// modifications only matter for the copy being emitted — hence each sequence
/// ends with `Emit` (or `Drop`) before the next begins, and field changes are
/// re-applied per sequence.
fn lower_seq(seq: &ActionSeq, out: &mut Vec<Instruction>) {
    for a in &seq.actions {
        match a {
            snap_xfdd::Action::Modify(f, v) => {
                out.push(Instruction::SetField(f.clone(), v.clone()))
            }
            snap_xfdd::Action::StateSet { var, index, value } => out.push(Instruction::StateSet {
                var: var.clone(),
                index: index.clone(),
                value: value.clone(),
            }),
            snap_xfdd::Action::StateIncr { var, index } => out.push(Instruction::StateAdd {
                var: var.clone(),
                index: index.clone(),
                delta: 1,
            }),
            snap_xfdd::Action::StateDecr { var, index } => out.push(Instruction::StateAdd {
                var: var.clone(),
                index: index.clone(),
                delta: -1,
            }),
        }
    }
    if seq.drops {
        out.push(Instruction::Drop);
    } else {
        out.push(Instruction::Emit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_lang::builder::*;
    use snap_lang::Policy;

    fn compile(p: &Policy) -> (Xfdd, NetAsmProgram) {
        let xfdd = snap_xfdd::compile(p).unwrap();
        let asm = NetAsmProgram::lower(&xfdd);
        (xfdd, asm)
    }

    #[test]
    fn lowering_simple_forwarding() {
        let p = ite(
            test(Field::DstIp, Value::prefix(10, 0, 1, 0, 24)),
            modify(Field::OutPort, Value::Int(1)),
            drop(),
        );
        let (_, asm) = compile(&p);
        assert!(asm.num_branches() >= 1);
        assert!(!asm.is_empty());
        let inside = Packet::new().with(Field::DstIp, Value::ip(10, 0, 1, 5));
        let outside = Packet::new().with(Field::DstIp, Value::ip(10, 0, 2, 5));
        let (out, _) = asm.execute(&inside, &Store::new()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(
            out.iter().next().unwrap().get(&Field::OutPort),
            Some(&Value::Int(1))
        );
        let (out, _) = asm.execute(&outside, &Store::new()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn netasm_execution_matches_xfdd_on_stateful_program() {
        let p = ite(
            test(Field::SrcPort, Value::Int(53)),
            state_incr("dns", vec![field(Field::DstIp)]).seq(modify(Field::OutPort, Value::Int(6))),
            ite(
                state_test("dns", vec![field(Field::SrcIp)], int(2)),
                drop(),
                modify(Field::OutPort, Value::Int(1)),
            ),
        );
        let (xfdd, asm) = compile(&p);
        let mut store_a = Store::new();
        let mut store_b = Store::new();
        for i in 0..6i64 {
            let pkt = Packet::new()
                .with(Field::SrcPort, if i % 2 == 0 { 53 } else { 80 })
                .with(Field::SrcIp, Value::ip(10, 0, 0, (i % 3) as u8))
                .with(Field::DstIp, Value::ip(10, 0, 0, (i % 3) as u8));
            let (pa, sa) = xfdd.evaluate(&pkt, &store_a).unwrap();
            let (pb, sb) = asm.execute(&pkt, &store_b).unwrap();
            assert_eq!(pa, pb, "packet {i}");
            assert_eq!(sa, sb, "store {i}");
            store_a = sa;
            store_b = sb;
        }
    }

    #[test]
    fn state_op_counting() {
        let p = state_incr("c", vec![field(Field::InPort)]).seq(ite(
            state_test("c", vec![field(Field::InPort)], int(3)),
            drop(),
            id(),
        ));
        let (_, asm) = compile(&p);
        assert!(asm.num_state_ops() >= 2);
        assert!(asm.len() > 2);
    }

    #[test]
    fn multi_sequence_leaf_emits_each_copy() {
        // Parallel composition duplicates the packet with different outports.
        let p = modify(Field::OutPort, Value::Int(1)).par(modify(Field::OutPort, Value::Int(2)));
        let (xfdd, asm) = compile(&p);
        let pkt = Packet::new().with(Field::InPort, 4);
        let (a, _) = xfdd.evaluate(&pkt, &Store::new()).unwrap();
        let (b, _) = asm.execute(&pkt, &Store::new()).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn shared_subdiagrams_are_lowered_once() {
        // Two outer branches funnel into the same egress subdiagram: the
        // arena shares it, and the lowering must too — one block per distinct
        // node, so the instruction count tracks the arena size, not the tree
        // size.
        let egress = ite(
            test(Field::DstPort, Value::Int(80)),
            modify(Field::OutPort, Value::Int(1)),
            modify(Field::OutPort, Value::Int(2)),
        );
        let p = ite(
            test(Field::SrcPort, Value::Int(53)),
            egress.clone(),
            ite(test(Field::SrcPort, Value::Int(123)), egress, drop()),
        );
        let (xfdd, asm) = compile(&p);
        assert!((xfdd.size() as u64) < xfdd.tree_size());
        // Each distinct branch node lowers to exactly one Branch instruction.
        assert_eq!(asm.num_branches(), xfdd.num_tests());
    }
}
