//! Multi-worker traffic generation: drive a packet workload through any
//! packet-driving plane from N threads.
//!
//! The [`TrafficEngine`] is generic over a [`TrafficTarget`] — anything
//! that can run a batch of packets and report, per packet, the epoch it
//! executed under and its egress. The in-process [`Network`] is one target
//! (RCU snapshots, sharded state); a [`Network`] delivering through bounded
//! per-port queues is another ([`QueuedNetwork`]); the distributed
//! `snap-distrib` plane implements the same trait over its per-switch
//! agents, so one worker harness drives every plane.
//!
//! Scaling traffic is embarrassingly parallel up to the per-switch store
//! shards: the engine shards a workload across worker threads, each worker
//! pumps its shard batch by batch (one configuration acquisition — and one
//! store-lock acquisition per visited switch — per batch, thanks to the
//! shared batched driver) and collects its egress locally; per-worker
//! results are only merged after the workers join — no shared output
//! structure, no coordination on the hot path.
//!
//! The engine runs happily *while* a controller reconfigures the target:
//! each packet reports the epoch it ran under, the report keeps both the
//! observed epoch set and the per-worker epoch sequences, and tests use
//! those to assert that concurrent recompiles really interleaved with the
//! traffic (and that epochs never ran backwards within a worker).

use crate::egress::EgressQueues;
use crate::network::{Network, QueuedBatchOutput, SimError};
use snap_lang::Packet;
use snap_topology::PortId;
use std::collections::BTreeSet;

/// Per-packet outcome of driving one batch through a [`TrafficTarget`]:
/// the epoch the packet executed under and its egress events, or the
/// packet's error.
pub type TargetBatch<E> = Vec<Result<(u64, Vec<(PortId, Packet)>), E>>;

/// Anything the [`TrafficEngine`] can drive a workload through: a plane
/// that executes batches of packets and reports per-packet epochs and
/// egress. Implemented by [`Network`], [`QueuedNetwork`] and the
/// distributed plane of `snap-distrib`.
pub trait TrafficTarget: Sync {
    /// The plane's per-packet error type.
    type Error: Send;

    /// Run one batch of packets to completion and report, in batch order,
    /// each packet's `(epoch, egress)` or error.
    fn drive_batch(&self, batch: &[(PortId, Packet)]) -> TargetBatch<Self::Error>;
}

impl TrafficTarget for Network {
    type Error = SimError;

    fn drive_batch(&self, batch: &[(PortId, Packet)]) -> TargetBatch<SimError> {
        // The list-collecting path: per-packet egress arrives as the same
        // sorted, deduplicated events `inject_batch` would report, without
        // a tree set built per packet in between.
        let (epoch, outputs) = self.inject_batch_lists(batch);
        outputs
            .into_iter()
            .map(|result| result.map(|list| (epoch, list)))
            .collect()
    }
}

impl<T: TrafficTarget + Send> TrafficTarget for std::sync::Arc<T> {
    type Error = T::Error;

    fn drive_batch(&self, batch: &[(PortId, Packet)]) -> TargetBatch<Self::Error> {
        (**self).drive_batch(batch)
    }
}

/// A [`Network`] whose egress is *delivered* through bounded per-port FIFO
/// queues ([`EgressQueues`]) instead of only collected: backpressure
/// tail-drops are counted on the queues, and consumers drain ports
/// explicitly — the same delivery model the distributed plane uses, now
/// available to the in-process simulator under the shared driver.
pub struct QueuedNetwork<'a> {
    network: &'a Network,
    queues: &'a EgressQueues,
}

impl<'a> QueuedNetwork<'a> {
    /// Drive `network` with deliveries landing in `queues`.
    pub fn new(network: &'a Network, queues: &'a EgressQueues) -> QueuedNetwork<'a> {
        QueuedNetwork { network, queues }
    }

    /// The underlying queues.
    pub fn queues(&self) -> &EgressQueues {
        self.queues
    }

    /// Inject one batch, delivering through the queues.
    pub fn inject_batch(&self, batch: &[(PortId, Packet)]) -> QueuedBatchOutput {
        self.network.inject_batch_queued(batch, self.queues)
    }

    /// The network's [`Network::metrics_snapshot`] enriched with this
    /// target's egress queue stats (`egress.enqueued` / `.dropped` /
    /// `.depth`, one row per port).
    pub fn metrics_snapshot(&self) -> snap_telemetry::MetricsSnapshot {
        let mut snap = self.network.metrics_snapshot();
        crate::metrics::export_egress(&mut snap, "egress", self.queues);
        snap
    }
}

impl TrafficTarget for QueuedNetwork<'_> {
    type Error = SimError;

    fn drive_batch(&self, batch: &[(PortId, Packet)]) -> TargetBatch<SimError> {
        let out = self.inject_batch(batch);
        out.outputs
            .into_iter()
            .map(|result| result.map(|list| (out.epoch, list)))
            .collect()
    }
}

/// Drives a packet workload through a [`TrafficTarget`] over N worker
/// threads.
#[derive(Clone, Copy, Debug)]
pub struct TrafficEngine {
    workers: usize,
    batch_size: usize,
}

/// What a [`TrafficEngine::run`] did: per-worker egress, counters and the
/// configuration epochs the packets observed. Generic over the target's
/// error type (defaulting to the in-process plane's [`SimError`]).
#[derive(Clone, Debug)]
pub struct TrafficReport<E = SimError> {
    /// Egress events collected by each worker, in that worker's processing
    /// order (each packet's egress grouped, packets in shard order).
    pub egress: Vec<Vec<(PortId, Packet)>>,
    /// Packets successfully processed to completion.
    pub processed: usize,
    /// Per-packet errors encountered (a failed packet loses only its own
    /// egress; the rest of its batch is unaffected).
    pub errors: Vec<E>,
    /// Configuration epochs observed across all packets.
    pub epochs: BTreeSet<u64>,
    /// Per worker, the epoch of each successfully processed packet in that
    /// worker's processing order — what tests use to assert per-worker
    /// epoch monotonicity under concurrent reconfiguration.
    pub worker_epochs: Vec<Vec<u64>>,
}

impl<E> Default for TrafficReport<E> {
    fn default() -> Self {
        TrafficReport {
            egress: Vec::new(),
            processed: 0,
            errors: Vec::new(),
            epochs: BTreeSet::new(),
            worker_epochs: Vec::new(),
        }
    }
}

impl<E> TrafficReport<E> {
    /// Total number of egress events across all workers.
    pub fn total_egress(&self) -> usize {
        self.egress.iter().map(Vec::len).sum()
    }

    /// Did every packet process without error?
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

impl TrafficEngine {
    /// An engine with `workers` threads (minimum 1) and the default batch
    /// size.
    pub fn new(workers: usize) -> TrafficEngine {
        TrafficEngine {
            workers: workers.max(1),
            batch_size: 64,
        }
    }

    /// Packets per [`TrafficTarget::drive_batch`] call (minimum 1). Larger
    /// batches amortize configuration and store-lock acquisitions; smaller
    /// ones observe config swaps at a finer grain.
    pub fn with_batch_size(mut self, batch_size: usize) -> TrafficEngine {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Shard `workload` across the workers and run every packet to
    /// completion through `target`. Returns when all workers have drained
    /// their shards.
    pub fn run<T: TrafficTarget>(
        &self,
        target: &T,
        workload: &[(PortId, Packet)],
    ) -> TrafficReport<T::Error> {
        let pump = |shard: &[(PortId, Packet)]| {
            let mut result = WorkerResult::default();
            for batch in shard.chunks(self.batch_size) {
                for packet in target.drive_batch(batch) {
                    match packet {
                        Ok((epoch, egress)) => {
                            result.processed += 1;
                            result.epochs.push(epoch);
                            result.egress.extend(egress);
                        }
                        Err(e) => result.errors.push(e),
                    }
                }
            }
            result
        };
        let shard_len = workload.len().div_ceil(self.workers).max(1);
        let worker_results: Vec<WorkerResult<T::Error>> = if self.workers == 1 {
            // A single worker has nothing to run concurrently with: pump the
            // workload on the calling thread and keep its warm caches,
            // instead of paying a spawn/join and a cold core per run.
            vec![pump(workload)]
        } else {
            let shards: Vec<&[(PortId, Packet)]> = workload.chunks(shard_len).collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .into_iter()
                    .map(|shard| scope.spawn(move || pump(shard)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("traffic worker panicked"))
                    .collect()
            })
        };

        let mut report = TrafficReport::default();
        for w in worker_results {
            report.egress.push(w.egress);
            report.processed += w.processed;
            report.errors.extend(w.errors);
            report.epochs.extend(w.epochs.iter().copied());
            report.worker_epochs.push(w.epochs);
        }
        report
    }
}

struct WorkerResult<E> {
    egress: Vec<(PortId, Packet)>,
    processed: usize,
    errors: Vec<E>,
    epochs: Vec<u64>,
}

impl<E> Default for WorkerResult<E> {
    fn default() -> Self {
        WorkerResult {
            egress: Vec::new(),
            processed: 0,
            errors: Vec::new(),
            epochs: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::SwitchConfig;
    use snap_lang::builder::*;
    use snap_lang::{Field, Value};
    use snap_topology::generators::campus;
    use std::collections::BTreeSet;

    fn counting_network() -> Network {
        let policy = state_incr("count", vec![field(Field::SrcPort)]).seq(ite(
            test_prefix(Field::DstIp, 10, 0, 6, 0, 24),
            modify(Field::OutPort, Value::Int(6)),
            modify(Field::OutPort, Value::Int(1)),
        ));
        let topo = campus();
        let program = snap_xfdd::compile(&policy).unwrap();
        let owners = std::collections::BTreeMap::from([(
            topo.node_by_name("C6").unwrap(),
            BTreeSet::from(["count".into()]),
        )]);
        let configs = SwitchConfig::for_topology(&topo, &program, &owners);
        Network::new(topo, configs)
    }

    fn workload(n: usize) -> Vec<(PortId, Packet)> {
        (0..n)
            .map(|i| {
                (
                    PortId(1 + i % 6),
                    Packet::new()
                        .with(Field::SrcPort, (i % 17) as i64)
                        .with(Field::DstIp, Value::ip(10, 0, (i % 7) as u8, 1)),
                )
            })
            .collect()
    }

    #[test]
    fn multi_worker_run_matches_single_worker() {
        let load = workload(120);

        let single = TrafficEngine::new(1).run(&counting_network(), &load);
        assert!(single.is_clean());
        assert_eq!(single.processed, load.len());

        let multi = TrafficEngine::new(4)
            .with_batch_size(8)
            .run(&counting_network(), &load);
        assert!(multi.is_clean());
        assert_eq!(multi.processed, load.len());
        assert_eq!(multi.epochs, BTreeSet::from([0]));
        assert!(multi
            .worker_epochs
            .iter()
            .all(|trace| trace.iter().all(|&e| e == 0)));

        // Same egress multiset regardless of worker count.
        let collect = |r: &TrafficReport| {
            let mut all: Vec<(PortId, Packet)> =
                r.egress.iter().flat_map(|v| v.iter().cloned()).collect();
            all.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            all
        };
        assert_eq!(collect(&single), collect(&multi));
        assert_eq!(single.total_egress(), multi.total_egress());
    }

    #[test]
    fn worker_and_batch_floors() {
        let engine = TrafficEngine::new(0).with_batch_size(0);
        assert_eq!(engine.workers(), 1);
        let report = engine.run(&counting_network(), &workload(3));
        assert!(report.is_clean());
        assert_eq!(report.processed, 3);
    }

    #[test]
    fn failing_packets_lose_only_their_own_egress() {
        // Packets at an unknown port error individually; the rest of their
        // batch still processes, counts and egresses.
        let net = counting_network();
        let mut load = workload(40);
        for i in [3usize, 17, 34] {
            load[i].0 = PortId(99);
        }
        let report = TrafficEngine::new(2).with_batch_size(10).run(&net, &load);
        assert_eq!(report.errors.len(), 3);
        assert!(report
            .errors
            .iter()
            .all(|e| *e == SimError::UnknownPort(PortId(99))));
        assert_eq!(report.processed, 37);
        assert_eq!(report.total_egress(), 37);
        // The successful packets' state landed.
        let store = net.aggregate_store();
        let total: i64 = (0..17)
            .map(|p| {
                store
                    .get(&"count".into(), &[Value::Int(p)])
                    .as_int()
                    .unwrap()
            })
            .sum();
        assert_eq!(total, 37);
    }

    #[test]
    fn state_totals_are_exact_across_workers() {
        // Every packet increments count[srcport]; with the owner fixed, the
        // sum over all indices must equal the number of packets, however
        // the workload was sharded.
        let net = counting_network();
        let load = workload(90);
        let report = TrafficEngine::new(3).with_batch_size(7).run(&net, &load);
        assert!(report.is_clean());
        let store = net.aggregate_store();
        let total: i64 = (0..17)
            .map(|p| {
                store
                    .get(&"count".into(), &[Value::Int(p)])
                    .as_int()
                    .unwrap()
            })
            .sum();
        assert_eq!(total, load.len() as i64);
    }

    #[test]
    fn queued_network_delivers_through_port_queues() {
        // The same engine, the same network — but egress lands in bounded
        // per-port FIFO queues, exactly like the distributed plane.
        let net = counting_network();
        let queues = EgressQueues::new(net.topology().external_ports().map(|(p, _)| p), 4096);
        let load = workload(80);
        let report = TrafficEngine::new(2)
            .with_batch_size(16)
            .run(&QueuedNetwork::new(&net, &queues), &load);
        assert!(report.is_clean());
        assert_eq!(report.processed, 80);
        assert_eq!(report.total_egress(), 80);
        // Every delivery was enqueued (capacity is ample), stamped with the
        // running epoch, and drains in FIFO order.
        assert_eq!(queues.total_enqueued(), 80);
        assert_eq!(queues.total_dropped(), 0);
        let mut drained = 0;
        for (_, events) in queues.drain_all() {
            let mut last = None;
            for e in &events {
                assert_eq!(e.epoch, 0);
                assert!(last.is_none_or(|s| e.seq > s), "per-port FIFO violated");
                last = Some(e.seq);
            }
            drained += events.len();
        }
        assert_eq!(drained, 80);
    }
}
