//! Multi-worker traffic generation: drive a packet workload through a
//! [`Network`] from N threads.
//!
//! [`Network::inject`] takes `&self` and every packet runs against an
//! immutable configuration snapshot, so scaling traffic is embarrassingly
//! parallel up to the per-switch store shards: the [`TrafficEngine`] shards
//! a workload across worker threads, each worker pumps its shard through
//! [`Network::inject_batch`] (one snapshot acquisition per batch) and
//! collects its egress locally, and the per-worker results are only merged
//! after the workers join — no shared output structure, no coordination on
//! the hot path.
//!
//! The engine runs happily *while* a controller calls
//! [`Network::swap_configs`]: each batch reports the epoch it ran under, and
//! the engine aggregates the set of epochs observed, which tests use to
//! assert that concurrent recompiles were actually interleaved with the
//! traffic.

use crate::network::{Network, SimError};
use snap_lang::Packet;
use snap_topology::PortId;
use std::collections::BTreeSet;

/// Drives a packet workload through a [`Network`] over N worker threads.
#[derive(Clone, Copy, Debug)]
pub struct TrafficEngine {
    workers: usize,
    batch_size: usize,
}

/// What a [`TrafficEngine::run`] did: per-worker egress, counters and the
/// set of configuration epochs the batches observed.
#[derive(Clone, Debug, Default)]
pub struct TrafficReport {
    /// Egress events collected by each worker, in that worker's processing
    /// order.
    pub egress: Vec<Vec<(PortId, Packet)>>,
    /// Packets successfully processed to completion.
    pub processed: usize,
    /// Per-packet errors encountered (a failed packet loses only its own
    /// egress; the rest of its batch is unaffected).
    pub errors: Vec<SimError>,
    /// Configuration epochs observed across all batches.
    pub epochs: BTreeSet<u64>,
}

impl TrafficReport {
    /// Total number of egress events across all workers.
    pub fn total_egress(&self) -> usize {
        self.egress.iter().map(Vec::len).sum()
    }

    /// Did every packet process without error?
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

impl TrafficEngine {
    /// An engine with `workers` threads (minimum 1) and the default batch
    /// size.
    pub fn new(workers: usize) -> TrafficEngine {
        TrafficEngine {
            workers: workers.max(1),
            batch_size: 64,
        }
    }

    /// Packets per [`Network::inject_batch`] call (minimum 1). Larger
    /// batches amortize the snapshot acquisition; smaller ones observe
    /// config swaps at a finer grain.
    pub fn with_batch_size(mut self, batch_size: usize) -> TrafficEngine {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Shard `workload` across the workers and run every packet to
    /// completion. Returns when all workers have drained their shards.
    pub fn run(&self, network: &Network, workload: &[(PortId, Packet)]) -> TrafficReport {
        let shard_len = workload.len().div_ceil(self.workers).max(1);
        let shards: Vec<&[(PortId, Packet)]> = workload.chunks(shard_len).collect();
        let worker_results: Vec<WorkerResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|shard| {
                    scope.spawn(move || {
                        let mut result = WorkerResult::default();
                        for batch in shard.chunks(self.batch_size) {
                            let out = network.inject_batch(batch);
                            result.epochs.insert(out.epoch);
                            for set in out.outputs {
                                match set {
                                    Ok(set) => {
                                        result.processed += 1;
                                        result.egress.extend(set);
                                    }
                                    Err(e) => result.errors.push(e),
                                }
                            }
                        }
                        result
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("traffic worker panicked"))
                .collect()
        });

        let mut report = TrafficReport::default();
        for w in worker_results {
            report.egress.push(w.egress);
            report.processed += w.processed;
            report.errors.extend(w.errors);
            report.epochs.extend(w.epochs);
        }
        report
    }
}

#[derive(Default)]
struct WorkerResult {
    egress: Vec<(PortId, Packet)>,
    processed: usize,
    errors: Vec<SimError>,
    epochs: BTreeSet<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::SwitchConfig;
    use snap_lang::builder::*;
    use snap_lang::{Field, Value};
    use snap_topology::generators::campus;
    use std::collections::BTreeSet;

    fn counting_network() -> Network {
        let policy = state_incr("count", vec![field(Field::SrcPort)]).seq(ite(
            test_prefix(Field::DstIp, 10, 0, 6, 0, 24),
            modify(Field::OutPort, Value::Int(6)),
            modify(Field::OutPort, Value::Int(1)),
        ));
        let topo = campus();
        let program = snap_xfdd::compile(&policy).unwrap();
        let owners = std::collections::BTreeMap::from([(
            topo.node_by_name("C6").unwrap(),
            BTreeSet::from(["count".into()]),
        )]);
        let configs = SwitchConfig::for_topology(&topo, &program, &owners);
        Network::new(topo, configs)
    }

    fn workload(n: usize) -> Vec<(PortId, Packet)> {
        (0..n)
            .map(|i| {
                (
                    PortId(1 + i % 6),
                    Packet::new()
                        .with(Field::SrcPort, (i % 17) as i64)
                        .with(Field::DstIp, Value::ip(10, 0, (i % 7) as u8, 1)),
                )
            })
            .collect()
    }

    #[test]
    fn multi_worker_run_matches_single_worker() {
        let load = workload(120);

        let single = TrafficEngine::new(1).run(&counting_network(), &load);
        assert!(single.is_clean());
        assert_eq!(single.processed, load.len());

        let multi = TrafficEngine::new(4)
            .with_batch_size(8)
            .run(&counting_network(), &load);
        assert!(multi.is_clean());
        assert_eq!(multi.processed, load.len());
        assert_eq!(multi.epochs, BTreeSet::from([0]));

        // Same egress multiset regardless of worker count.
        let collect = |r: &TrafficReport| {
            let mut all: Vec<(PortId, Packet)> =
                r.egress.iter().flat_map(|v| v.iter().cloned()).collect();
            all.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            all
        };
        assert_eq!(collect(&single), collect(&multi));
        assert_eq!(single.total_egress(), multi.total_egress());
    }

    #[test]
    fn worker_and_batch_floors() {
        let engine = TrafficEngine::new(0).with_batch_size(0);
        assert_eq!(engine.workers(), 1);
        let report = engine.run(&counting_network(), &workload(3));
        assert!(report.is_clean());
        assert_eq!(report.processed, 3);
    }

    #[test]
    fn failing_packets_lose_only_their_own_egress() {
        // Packets at an unknown port error individually; the rest of their
        // batch still processes, counts and egresses.
        let net = counting_network();
        let mut load = workload(40);
        for i in [3usize, 17, 34] {
            load[i].0 = PortId(99);
        }
        let report = TrafficEngine::new(2).with_batch_size(10).run(&net, &load);
        assert_eq!(report.errors.len(), 3);
        assert!(report
            .errors
            .iter()
            .all(|e| *e == SimError::UnknownPort(PortId(99))));
        assert_eq!(report.processed, 37);
        assert_eq!(report.total_egress(), 37);
        // The successful packets' state landed.
        let store = net.aggregate_store();
        let total: i64 = (0..17)
            .map(|p| {
                store
                    .get(&"count".into(), &[Value::Int(p)])
                    .as_int()
                    .unwrap()
            })
            .sum();
        assert_eq!(total, 37);
    }

    #[test]
    fn state_totals_are_exact_across_workers() {
        // Every packet increments count[srcport]; with the owner fixed, the
        // sum over all indices must equal the number of packets, however
        // the workload was sharded.
        let net = counting_network();
        let load = workload(90);
        let report = TrafficEngine::new(3).with_batch_size(7).run(&net, &load);
        assert!(report.is_clean());
        let store = net.aggregate_store();
        let total: i64 = (0..17)
            .map(|p| {
                store
                    .get(&"count".into(), &[Value::Int(p)])
                    .as_int()
                    .unwrap()
            })
            .sum();
        assert_eq!(total, load.len() as i64);
    }
}
