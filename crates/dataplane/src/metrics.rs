//! The dataplane's pre-registered telemetry handle bundle.
//!
//! The driver must never look a metric up by name on the hot path, so a
//! plane registers everything it will ever record **once**, at
//! construction, into a [`PlaneTelemetry`] bundle of cloned handles. The
//! driver then records through plain field accesses — each one a relaxed
//! RMW on the calling worker's shard (see the `snap-telemetry` crate docs
//! for the aggregation contract). Both planes ([`crate::Network`] and the
//! distributed `DistNetwork`) carry an `Option<Arc<PlaneTelemetry>>`:
//! `None` compiles telemetry down to a branch per batch, which is what the
//! bench's overhead guard compares against.

use crate::egress::EgressQueues;
use snap_telemetry::{Counter, CounterFamily, Histogram, MetricsSnapshot, Telemetry};
use snap_topology::Topology;
use std::sync::Arc;

/// Every metric handle the packet driver records through, pre-registered
/// against one [`Telemetry`] instance. Field names mirror the registered
/// metric names (listed in EXPERIMENTS.md § Telemetry).
pub struct PlaneTelemetry {
    telemetry: Telemetry,
    /// `driver.packets` — packets admitted at ingress (stamped with an
    /// epoch and entered into the wave loop).
    pub packets: Counter,
    /// `driver.deliveries` — packets (or forked copies) delivered to an
    /// egress port.
    pub deliveries: Counter,
    /// `driver.policy_drops` — packets dropped by the policy (drop leaf or
    /// dropping sequence).
    pub policy_drops: Counter,
    /// `driver.errors` — packets that failed (unknown port, hop budget,
    /// evaluation error, ...).
    pub errors: Counter,
    /// `driver.wave_prefix.packets` — flights advanced by the lock-free
    /// wave-prefix pass.
    pub wave_prefix_packets: Counter,
    /// `driver.wave_prefix.survivors` — of those, flights that still
    /// needed the locked phase (ended at a state test or state-writing
    /// leaf). `survivors / packets` is the fraction of wave traffic that
    /// pays for state.
    pub wave_prefix_survivors: Counter,
    /// `driver.batch_ns` — wall-clock nanoseconds per driven batch
    /// (log₂-bucketed latency histogram).
    pub batch_ns: Histogram,
    /// `packet.delivery_hops` — hop count of each delivered packet
    /// (log₂-bucketed occupancy histogram).
    pub delivery_hops: Histogram,
    /// `switch.packets` — per-switch ingress admissions.
    pub switch_packets: CounterFamily,
    /// `switch.hops` — per-switch locked-phase flight visits.
    pub switch_hops: CounterFamily,
    /// `switch.state_writes` — per-switch state actions applied to the
    /// switch's store shard.
    pub switch_state_writes: CounterFamily,
}

impl PlaneTelemetry {
    /// Register the dataplane metric set against `telemetry`, sizing the
    /// per-switch families off `topology` (labels are the topology's node
    /// names, indices its node ids).
    pub fn new(telemetry: Telemetry, topology: &Topology) -> Arc<PlaneTelemetry> {
        let labels: Vec<String> = topology
            .nodes()
            .map(|n| topology.node_name(n).to_string())
            .collect();
        let r = telemetry.registry();
        Arc::new(PlaneTelemetry {
            packets: r.counter("driver.packets"),
            deliveries: r.counter("driver.deliveries"),
            policy_drops: r.counter("driver.policy_drops"),
            errors: r.counter("driver.errors"),
            wave_prefix_packets: r.counter("driver.wave_prefix.packets"),
            wave_prefix_survivors: r.counter("driver.wave_prefix.survivors"),
            batch_ns: r.histogram("driver.batch_ns"),
            delivery_hops: r.histogram("packet.delivery_hops"),
            switch_packets: r.counter_family("switch.packets", &labels),
            switch_hops: r.counter_family("switch.hops", &labels),
            switch_state_writes: r.counter_family("switch.state_writes", &labels),
            telemetry,
        })
    }

    /// The underlying telemetry instance (for trace sampling control,
    /// event recording and snapshots).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Wave-prefix counters as `(packets, survivors)` — the per-instance
    /// successor of the removed process-wide `wave_prefix_stats()`.
    pub fn wave_prefix_stats(&self) -> (u64, u64) {
        (
            self.wave_prefix_packets.get(),
            self.wave_prefix_survivors.get(),
        )
    }
}

/// Append a set of egress queues to a snapshot as three `(port, value)`
/// families — enqueued, backpressure drops and current depth — named
/// `<prefix>.enqueued` / `.dropped` / `.depth`. Queue stats are computed
/// at snapshot time from the queues' own counters rather than
/// double-counted on the delivery path.
pub fn export_egress(snap: &mut MetricsSnapshot, prefix: &str, queues: &EgressQueues) {
    let mut enqueued = Vec::new();
    let mut dropped = Vec::new();
    let mut depth = Vec::new();
    for port in queues.ports() {
        let label = format!("port{}", port.0);
        enqueued.push((label.clone(), queues.enqueued(port)));
        dropped.push((label.clone(), queues.dropped(port)));
        depth.push((label, queues.depth(port) as u64));
    }
    snap.families.insert(format!("{prefix}.enqueued"), enqueued);
    snap.families.insert(format!("{prefix}.dropped"), dropped);
    snap.families.insert(format!("{prefix}.depth"), depth);
}

/// Append one switch's [`StateShards`](crate::StateShards) contention
/// stats to a snapshot as
/// three per-shard families — `store.shard.acquisitions` /
/// `.contended` / `.merge_flushes`, row label `<owner>/s<i>` — appending
/// to rows already exported for other switches. This replaces the old
/// process-wide `driver.store_lock_acquisitions` counter: the readings are
/// taken off the shards at snapshot time, so the packet path pays one
/// relaxed add per counted lock and nothing per snapshot-less run.
pub fn export_shards(snap: &mut MetricsSnapshot, owner: &str, shards: &crate::StateShards) {
    let mut acquisitions = Vec::new();
    let mut contended = Vec::new();
    let mut flushes = Vec::new();
    for i in 0..shards.num_shards() {
        let (a, c, f) = shards.shard_stats(i);
        let label = format!("{owner}/s{i}");
        acquisitions.push((label.clone(), a));
        contended.push((label.clone(), c));
        flushes.push((label, f));
    }
    for (name, rows) in [
        ("store.shard.acquisitions", acquisitions),
        ("store.shard.contended", contended),
        ("store.shard.merge_flushes", flushes),
    ] {
        snap.families
            .entry(name.to_string())
            .or_default()
            .extend(rows);
    }
}
