//! # snap-dataplane
//!
//! A concurrent, stateful software data plane for SNAP: a NetASM-like
//! instruction set lowered from flattened xFDDs, and a network simulator
//! that executes *distributed* SNAP programs hop by hop over a physical
//! topology while configurations are swapped underneath it.
//!
//! The paper's prototype emits NetASM and runs it on the NetASM software
//! switch; that artifact is not available, so this crate implements an
//! equivalent substrate:
//!
//! * [`NetAsmProgram`] — branch / table / store instructions lowered from
//!   the dense [`snap_xfdd::FlatProgram`] (one block per *distinct* node —
//!   sharing in the arena is sharing in the instruction stream), plus an
//!   interpreter (§5);
//! * [`Network`] / [`SwitchConfig`] — per-switch programs and state tables,
//!   packet injection at OBS ports and hop-by-hop forwarding, used to verify
//!   that distributed execution matches the one-big-switch semantics.
//!   [`Network::inject`] takes `&self`: the running configuration is an
//!   immutable, atomically-swappable [`ConfigSnapshot`] (RCU-style —
//!   readers never block on a recompile) over sharded per-switch state;
//! * [`driver`] — the one generic packet driver behind every plane: a
//!   single Emit/Dropped/NeedState/Fork dispatch loop, parameterized over a
//!   [`ViewResolver`] (how a hop resolves its executable view) and an
//!   [`EgressSink`] (where deliveries land), executing batches grouped per
//!   switch so state locking is amortized per (switch, batch-group):
//!   commuting updates buffer lock-free in per-worker replicas and merge
//!   into the [`StateShards`] at group end, exact variables take one
//!   key-range shard lock. Both [`Network`] and the distributed plane of
//!   `snap-distrib` are thin adapters over it;
//! * [`TrafficEngine`] — drives a packet workload through any
//!   [`TrafficTarget`] (the in-process network, the queue-delivering
//!   [`QueuedNetwork`], the distributed plane) from N worker threads with
//!   per-worker egress collection;
//! * [`PlaneTelemetry`] — the pre-registered `snap-telemetry` handle
//!   bundle the driver records through: per-instance packet / hop /
//!   state-write counters, wave-prefix survivor ratios, latency
//!   histograms and 1-in-N sampled packet traces, aggregated only on
//!   read ([`Network::metrics_snapshot`]).
//!
//! Programs are executed via their dense flat node ids, which double as the
//! §4.5 packet-tag node identifiers; the flattening is pure index
//! arithmetic at packet time.

#![warn(missing_docs)]

pub mod driver;
pub mod egress;
pub mod exec;
pub mod metrics;
pub mod netasm;
pub mod network;
pub mod shards;
pub mod traffic;

pub use driver::{BatchResults, Driver, EgressSink, HopView, ViewResolver};
pub use egress::{EgressEvent, EgressQueues, DEFAULT_QUEUE_CAPACITY};
pub use exec::{InFlight, NextHops, Progress, SimError, StepOutcome, StoreLease};
pub use metrics::{export_egress, export_shards, PlaneTelemetry};
pub use netasm::{Instruction, NetAsmProgram};
pub use network::{BatchOutput, ConfigSnapshot, Network, QueuedBatchOutput, SwitchConfig};
pub use shards::{StateShards, DEFAULT_STATE_SHARDS};
pub use traffic::{QueuedNetwork, TargetBatch, TrafficEngine, TrafficReport, TrafficTarget};
