//! # snap-dataplane
//!
//! A stateful software data plane for SNAP: a NetASM-like instruction set
//! lowered from hash-consed xFDDs, and a network simulator that executes
//! *distributed* SNAP programs hop by hop over a physical topology.
//!
//! The paper's prototype emits NetASM and runs it on the NetASM software
//! switch; that artifact is not available, so this crate implements an
//! equivalent substrate:
//!
//! * [`NetAsmProgram`] — branch / table / store instructions lowered from an
//!   interned xFDD (one block per *distinct* node — sharing in the arena is
//!   sharing in the instruction stream), plus an interpreter (§5);
//! * [`Network`] / [`SwitchConfig`] — per-switch programs and state tables,
//!   packet injection at OBS ports and hop-by-hop forwarding, used to verify
//!   that distributed execution matches the one-big-switch semantics.
//!
//! Diagrams are executed directly via their interned `NodeId`s, which double
//! as the §4.5 packet-tag node identifiers; there is no separate indexed or
//! flattened representation.

#![warn(missing_docs)]

pub mod netasm;
pub mod network;

pub use netasm::{Instruction, NetAsmProgram};
pub use network::{Network, SimError, SwitchConfig};
