//! # snap-dataplane
//!
//! A stateful software data plane for SNAP: a NetASM-like instruction set, a
//! node-addressable (indexed) form of xFDDs and a network simulator that
//! executes *distributed* SNAP programs hop by hop over a physical topology.
//!
//! The paper's prototype emits NetASM and runs it on the NetASM software
//! switch; that artifact is not available, so this crate implements an
//! equivalent substrate:
//!
//! * [`IndexedXfdd`] — xFDDs with stable node identifiers, which the
//!   SNAP header uses to record how far a packet has progressed (§4.5);
//! * [`NetAsmProgram`] — branch / table / store instructions lowered from an
//!   indexed xFDD, plus an interpreter (§5);
//! * [`Network`] / [`SwitchConfig`] — per-switch programs and state tables,
//!   packet injection at OBS ports and hop-by-hop forwarding, used to verify
//!   that distributed execution matches the one-big-switch semantics.

#![warn(missing_docs)]

pub mod netasm;
pub mod network;
pub mod program;

pub use netasm::{Instruction, NetAsmProgram};
pub use network::{Network, SimError, SwitchConfig};
pub use program::{IndexedNode, IndexedXfdd, NodeIdx};
