//! Key-range sharded state for one switch: `K` independently-locked
//! [`Store`] partitions plus per-shard contention counters.
//!
//! One `Arc<Mutex<Store>>` per switch serializes every stateful packet from
//! every worker on one lock — on the campus workload all DNS-tunnel state
//! lands on one switch, so adding workers *loses* throughput. A
//! [`StateShards`] splits that switch's tables by index hash across `K`
//! shards: workers contend only when they hit the same key range, and the
//! per-shard counters (acquisitions / contended acquisitions / merge
//! flushes) make the remaining contention observable independent of the
//! host's core count.
//!
//! ## Exactness contract
//!
//! A variable's table is the *disjoint union* of its per-shard partials:
//! every key routes to exactly one shard ([`StateShards::shard_of`] is a
//! deterministic hash), so unioning the partials ([`StateTable::absorb`])
//! reconstructs the table bit-identically — `aggregate_store`, config-swap
//! migration, and distrib table yield all go through
//! [`StateShards::collect_table`] / [`StateShards::remove_var`] and see
//! exactly what a single authoritative table would hold. Installing a table
//! ([`StateShards::insert_table`]) writes the table *skeleton* (empty
//! entries, the table's default) into **every** shard so a read of an
//! absent key returns the correct default no matter which shard the key
//! routes to.
//!
//! Counted locking ([`StateShards::lock_shard_counted`]) is for the packet
//! path only; control-plane operations use plain uncounted locks so the
//! contention counters measure dataplane behaviour.

use parking_lot::{Mutex, MutexGuard};
use snap_lang::{StateTable, StateVar, Store, Value};
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default shard count per switch. Eight shards keep the per-switch
/// footprint trivial while splitting a hot table's keys finely enough that
/// same-key collisions, not the lock itself, are the remaining contention.
pub const DEFAULT_STATE_SHARDS: usize = 8;

/// FNV-1a, hand-rolled so key→shard routing is deterministic across runs
/// and processes (std's `DefaultHasher` is randomly seeded per process).
struct Fnv(u64);

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

/// The sharded state of one switch (see the module docs).
#[derive(Debug)]
pub struct StateShards {
    shards: Vec<Mutex<Store>>,
    /// Packet-path lock acquisitions per shard (counted in
    /// [`StateShards::lock_shard_counted`], relaxed — summed on read).
    acquisitions: Vec<AtomicU64>,
    /// The subset of acquisitions that found the shard already locked.
    contended: Vec<AtomicU64>,
    /// Replica-delta merge flushes applied to each shard.
    merge_flushes: Vec<AtomicU64>,
}

impl StateShards {
    /// `k` independently-locked, initially empty shards (`k` is clamped to
    /// at least 1).
    pub fn new(k: usize) -> StateShards {
        let k = k.max(1);
        StateShards {
            shards: (0..k).map(|_| Mutex::new(Store::new())).collect(),
            acquisitions: (0..k).map(|_| AtomicU64::new(0)).collect(),
            contended: (0..k).map(|_| AtomicU64::new(0)).collect(),
            merge_flushes: (0..k).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard holding `var[index]`: a deterministic hash of the variable
    /// name and index values, so every worker routes a key identically.
    pub fn shard_of(&self, var: &StateVar, index: &[Value]) -> usize {
        let mut h = Fnv::new();
        var.hash(&mut h);
        index.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    /// Packet-path lock: counts the acquisition, and whether it had to wait
    /// for another worker, into the shard's contention counters.
    pub fn lock_shard_counted(&self, i: usize) -> MutexGuard<'_, Store> {
        self.acquisitions[i].fetch_add(1, Ordering::Relaxed);
        match self.shards[i].try_lock() {
            Some(g) => g,
            None => {
                self.contended[i].fetch_add(1, Ordering::Relaxed);
                self.shards[i].lock()
            }
        }
    }

    /// Control-plane lock: uncounted, so aggregation/migration/tests don't
    /// pollute the dataplane contention counters.
    pub fn lock_shard(&self, i: usize) -> MutexGuard<'_, Store> {
        self.shards[i].lock()
    }

    /// Record one replica-delta merge flush applied to shard `i`.
    pub fn note_flush(&self, i: usize) {
        self.merge_flushes[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Per-shard `(acquisitions, contended, merge_flushes)` readings.
    pub fn shard_stats(&self, i: usize) -> (u64, u64, u64) {
        (
            self.acquisitions[i].load(Ordering::Relaxed),
            self.contended[i].load(Ordering::Relaxed),
            self.merge_flushes[i].load(Ordering::Relaxed),
        )
    }

    /// Total packet-path lock acquisitions across all shards.
    pub fn total_acquisitions(&self) -> u64 {
        self.acquisitions
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum()
    }

    /// Total contended packet-path acquisitions across all shards.
    pub fn total_contended(&self) -> u64 {
        self.contended
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum()
    }

    /// Read `var[index]` (routes to the owning shard; the table skeleton in
    /// every shard makes absent-key reads return the right default).
    pub fn get(&self, var: &StateVar, index: &[Value]) -> Value {
        let i = self.shard_of(var, index);
        self.lock_shard(i).get(var, index)
    }

    /// Write `var[index] ← value` on the owning shard.
    pub fn set(&self, var: &StateVar, index: Vec<Value>, value: Value) {
        let i = self.shard_of(var, &index);
        self.lock_shard(i).set(var, index, value);
    }

    /// Every variable with a table in any shard.
    pub fn variables(&self) -> BTreeSet<StateVar> {
        let mut out = BTreeSet::new();
        for shard in &self.shards {
            out.extend(shard.lock().variables().cloned());
        }
        out
    }

    /// Non-destructive union of `var`'s per-shard partials: the exact table
    /// a single authoritative store would hold, or `None` if no shard has
    /// one. Locks shards one at a time (never nested).
    pub fn collect_table(&self, var: &StateVar) -> Option<StateTable> {
        let mut out: Option<StateTable> = None;
        for shard in &self.shards {
            if let Some(part) = shard.lock().table(var) {
                match &mut out {
                    None => out = Some(part.clone()),
                    Some(acc) => acc.absorb(part.clone()),
                }
            }
        }
        out
    }

    /// Remove `var` from every shard and return the union of the partials
    /// (used when migrating a variable to another switch).
    pub fn remove_var(&self, var: &StateVar) -> Option<StateTable> {
        let mut out: Option<StateTable> = None;
        for shard in &self.shards {
            if let Some(part) = shard.lock().remove_table(var) {
                match &mut out {
                    None => out = Some(part),
                    Some(acc) => acc.absorb(part),
                }
            }
        }
        out
    }

    /// Install a whole table for `var`, redistributing its entries to their
    /// owning shards. Every shard gets the table skeleton (the correct
    /// default) so absent-key reads behave identically to the unsharded
    /// store; entries land only where their key routes.
    pub fn insert_table(&self, var: StateVar, table: StateTable) {
        let default = table.default_value().clone();
        for shard in &self.shards {
            shard
                .lock()
                .insert_table(var.clone(), StateTable::with_default(default.clone()));
        }
        for (index, value) in table.iter() {
            let i = self.shard_of(&var, index);
            self.lock_shard(i).set(&var, index.clone(), value.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(s: &str) -> StateVar {
        StateVar::new(s)
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let shards = StateShards::new(8);
        for i in 0..100i64 {
            let idx = [Value::Int(i)];
            let a = shards.shard_of(&sv("x"), &idx);
            let b = shards.shard_of(&sv("x"), &idx);
            assert_eq!(a, b);
            assert!(a < 8);
        }
        // Distinct keys actually spread over multiple shards.
        let used: BTreeSet<usize> = (0..100i64)
            .map(|i| shards.shard_of(&sv("x"), &[Value::Int(i)]))
            .collect();
        assert!(used.len() > 1, "all keys landed on one shard");
    }

    #[test]
    fn set_get_roundtrip_across_shards() {
        let shards = StateShards::new(4);
        for i in 0..32i64 {
            shards.set(&sv("c"), vec![Value::Int(i)], Value::Int(i * 10));
        }
        for i in 0..32i64 {
            assert_eq!(
                shards.get(&sv("c"), &[Value::Int(i)]),
                Value::Int(i * 10),
                "key {i}"
            );
        }
        // Unwritten keys still read the default.
        assert_eq!(shards.get(&sv("c"), &[Value::Int(999)]), Value::Int(0));
    }

    #[test]
    fn insert_collect_remove_are_bit_identical() {
        let shards = StateShards::new(8);
        let mut table = StateTable::with_default(Value::Bool(false));
        for i in 0..40i64 {
            table.set(vec![Value::Int(i)], Value::Bool(i % 2 == 0));
        }
        shards.insert_table(sv("flags"), table.clone());
        // The skeleton keeps default reads correct in every shard.
        assert_eq!(
            shards.get(&sv("flags"), &[Value::Int(12345)]),
            Value::Bool(false)
        );
        assert_eq!(shards.collect_table(&sv("flags")), Some(table.clone()));
        assert_eq!(shards.remove_var(&sv("flags")), Some(table));
        assert_eq!(shards.collect_table(&sv("flags")), None);
        assert!(shards.variables().is_empty());
    }

    #[test]
    fn counted_locks_feed_stats() {
        let shards = StateShards::new(2);
        drop(shards.lock_shard_counted(0));
        drop(shards.lock_shard_counted(0));
        drop(shards.lock_shard_counted(1));
        assert_eq!(shards.shard_stats(0).0, 2);
        assert_eq!(shards.shard_stats(1).0, 1);
        assert_eq!(shards.total_acquisitions(), 3);
        assert_eq!(shards.total_contended(), 0);
        shards.note_flush(1);
        assert_eq!(shards.shard_stats(1).2, 1);
        // Control-plane locks are uncounted.
        drop(shards.lock_shard(0));
        assert_eq!(shards.total_acquisitions(), 3);
    }

    #[test]
    fn contended_acquisition_is_counted() {
        let shards = std::sync::Arc::new(StateShards::new(1));
        let g = shards.lock_shard_counted(0);
        let s2 = shards.clone();
        let t = std::thread::spawn(move || {
            drop(s2.lock_shard_counted(0));
        });
        // Give the thread time to hit the held lock.
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(g);
        t.join().unwrap();
        assert_eq!(shards.total_acquisitions(), 2);
        assert_eq!(shards.total_contended(), 1);
    }
}
