//! The per-switch execution core under the one generic driver
//! ([`crate::driver`]).
//!
//! Every plane executes packets the same way: resolve the stateless spans
//! of the dense [`FlatProgram`] through its table compilation
//! ([`TableProgram`] — one field load and one indexed lookup per collapsed
//! test run), pause at state the local switch does not own, fork at
//! parallel leaves, and emit towards an egress port. The driver owns the
//! dispatch loop; this module holds the machinery underneath it: the
//! in-flight packet representation ([`InFlight`], [`Progress`]), the
//! single-switch step ([`process_at_switch`], [`StepOutcome`]), the
//! lazily-locking per-group lease over the switch's key-range state shards
//! ([`StoreLease`] — commuting writes buffer lock-free replica deltas,
//! exact accesses lock only the key's shard, at most one shard guard is
//! held at a time so leases cannot deadlock, and lock contention is
//! counted on the [`StateShards`] themselves), the precomputed
//! shortest-path next-hop table ([`NextHops`]) and the small packet-header
//! helpers.
//!
//! The process-wide `store_lock_acquisitions` / `wave_prefix_stats`
//! statics that used to live here are gone: they were shared by every
//! `Network` in a process, so concurrently running tests contaminated
//! each other's readings. Their successors are the per-shard contention
//! counters on [`StateShards`] (exported as `store.shard.*` families) and
//! the per-instance wave-prefix counters on [`crate::PlaneTelemetry`].

use crate::shards::StateShards;
use parking_lot::MutexGuard;
use snap_lang::{EvalError, Expr, Field, Packet, StateVar, Store, Value};
use snap_telemetry::HopRecord;
use snap_topology::{NodeId as SwitchId, PortId, Topology};
use snap_xfdd::{Action, FlatId, FlatNode, FlatProgram, StateClass, TableProgram, Test};
use std::collections::BTreeSet;

// One reusable index buffer per thread: state accesses evaluate their index
// vector into it instead of allocating a fresh `Vec` per packet, and the
// store only clones the index on an entry's first write.
thread_local! {
    static INDEX_SCRATCH: std::cell::RefCell<Vec<Value>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// One buffered commuting update, awaiting the merge flush.
enum ReplicaOp {
    /// Net increment of a [`StateClass::Counter`] key.
    Add(i64),
    /// Idempotent literal set of a [`StateClass::IdempotentSet`] key.
    Set(Value),
}

/// A lazily locking lease on one switch's [`StateShards`].
///
/// The driver creates one lease per (switch, batch-group). Accesses route
/// to the key's shard and lock it on first touch (counted into the shard's
/// contention stats), and the lease keeps the guard across consecutive
/// accesses to the same shard — so a run of packets hitting the same key
/// range pays one lock acquisition instead of one per access, and packets
/// on *different* key ranges (or different workers' groups) don't
/// serialize at all.
///
/// **A lease holds at most one shard guard at any moment.** Touching a
/// different shard drops the held guard before acquiring the new one, so
/// no lease can hold-and-wait and two workers' leases can never deadlock,
/// whatever order their packets visit the key ranges in. The invariant
/// still guarantees what the exactness tests rely on: a state test and
/// the leaf action it guards address the same variable and key, hence the
/// same shard, hence one uninterrupted guard hold — test-then-act on a
/// key is atomic. Only accesses to *different* keys interleave across
/// workers at op granularity, which is within the plane's existing
/// cross-worker ordering contract.
///
/// Writes to variables the program classified as commuting
/// ([`StateClass::is_replicable`]) never lock: they accumulate in a private
/// delta buffer and are merged into the authoritative shards by
/// [`StoreLease::flush`] under one short lock per touched shard — exact,
/// because classification guarantees nothing on the packet path observes
/// the intermediate values and the buffered updates are order-independent.
pub struct StoreLease<'a> {
    shards: Option<&'a StateShards>,
    /// The single currently held shard guard, if any: `(shard index,
    /// guard)`. Never more than one — see the no-hold-and-wait invariant
    /// above.
    guard: Option<(usize, MutexGuard<'a, Store>)>,
    /// Buffered commuting updates: `(var, index, op, shard)`. Linear-scan
    /// coalesced — batch groups are small (≤ the driver's group size), so
    /// a scan beats a hash map here.
    deltas: Vec<(StateVar, Vec<Value>, ReplicaOp, usize)>,
    writes: u64,
}

impl<'a> StoreLease<'a> {
    /// A lease over a switch's shards (`None` for a switch with no state —
    /// every state access will then report the missing store).
    pub fn new(shards: Option<&'a StateShards>) -> StoreLease<'a> {
        StoreLease {
            shards,
            guard: None,
            deltas: Vec::new(),
            writes: 0,
        }
    }

    /// The store of shard `i`: reuses the held guard when it is already
    /// `i`'s, otherwise drops it first and locks `i` (counted). Holding at
    /// most one guard at a time is what rules out cross-worker deadlock.
    fn shard_store(&mut self, i: usize) -> &mut Store {
        let shards = self.shards.expect("state access requires shards");
        match self.guard {
            Some((held, _)) if held == i => {}
            _ => {
                self.guard = None;
                self.guard = Some((i, shards.lock_shard_counted(i)));
            }
        }
        &mut self.guard.as_mut().expect("guard just ensured").1
    }

    /// Evaluate a state test against the authoritative shard of the tested
    /// key. `None` when the switch has no shards.
    pub fn state_test(&mut self, test: &Test, pkt: &Packet) -> Option<Result<bool, EvalError>> {
        let shards = self.shards?;
        let Test::State { var, index, value } = test else {
            unreachable!("state_test called on a field test")
        };
        Some(INDEX_SCRATCH.with(|cell| {
            let idx = &mut *cell.borrow_mut();
            snap_lang::eval_index_into(index, pkt, idx)?;
            let expected = snap_lang::eval_expr(value, pkt)?;
            let shard = shards.shard_of(var, idx);
            let current = self.shard_store(shard).get(var, idx);
            Ok(current == expected)
        }))
    }

    /// Apply a state action under the variable's compile-time
    /// classification: commuting writes buffer a delta without locking,
    /// exact writes lock the key's shard. `None` when the switch has no
    /// shards.
    pub fn apply_action(
        &mut self,
        class: StateClass,
        action: &Action,
        pkt: &Packet,
    ) -> Option<Result<(), EvalError>> {
        let shards = self.shards?;
        let result = INDEX_SCRATCH.with(|cell| {
            let idx = &mut *cell.borrow_mut();
            match (class, action) {
                (
                    StateClass::Counter,
                    Action::StateIncr { var, index } | Action::StateDecr { var, index },
                ) => {
                    let delta = if matches!(action, Action::StateIncr { .. }) {
                        1
                    } else {
                        -1
                    };
                    snap_lang::eval_index_into(index, pkt, idx)?;
                    let shard = shards.shard_of(var, idx);
                    self.buffer(var, idx, ReplicaOp::Add(delta), shard);
                    Ok(())
                }
                (
                    StateClass::IdempotentSet,
                    Action::StateSet {
                        var,
                        index,
                        value: Expr::Value(v),
                    },
                ) => {
                    snap_lang::eval_index_into(index, pkt, idx)?;
                    let shard = shards.shard_of(var, idx);
                    self.buffer(var, idx, ReplicaOp::Set(v.clone()), shard);
                    Ok(())
                }
                _ => {
                    // Exact read-modify-write on the authoritative shard.
                    let var = action.written_var().expect("state action writes a var");
                    let index = match action {
                        Action::StateSet { index, .. }
                        | Action::StateIncr { index, .. }
                        | Action::StateDecr { index, .. } => index,
                        Action::Modify(_, _) => unreachable!("not a state action"),
                    };
                    snap_lang::eval_index_into(index, pkt, idx)?;
                    let shard = shards.shard_of(var, idx);
                    apply_state_action_at(action, pkt, idx, self.shard_store(shard))
                }
            }
        });
        if result.is_ok() {
            self.writes += 1;
        }
        Some(result)
    }

    /// Coalesce a commuting update into the delta buffer.
    fn buffer(&mut self, var: &StateVar, idx: &[Value], op: ReplicaOp, shard: usize) {
        for (v, i, existing, _) in self.deltas.iter_mut() {
            if v == var && i == idx {
                match (existing, op) {
                    (ReplicaOp::Add(n), ReplicaOp::Add(d)) => *n += d,
                    (slot @ ReplicaOp::Set(_), set @ ReplicaOp::Set(_)) => *slot = set,
                    // Classification never mixes kinds for one variable.
                    _ => unreachable!("mixed replica ops for one variable"),
                }
                return;
            }
        }
        self.deltas.push((var.clone(), idx.to_vec(), op, shard));
    }

    /// Merge the buffered commuting updates into the authoritative shards
    /// (one short counted lock per touched shard) and release every guard.
    /// The driver calls this at the end of each batch-group, bounding how
    /// stale a concurrent `aggregate_store` can observe replicated totals:
    /// exact once the workers have joined.
    pub fn flush(&mut self) {
        let mut deltas = std::mem::take(&mut self.deltas);
        // Group by shard so the single held guard swaps once per touched
        // shard; the ops commute, so reordering them is exact.
        deltas.sort_by_key(|(_, _, _, shard)| *shard);
        for (var, idx, op, shard) in &deltas {
            let store = self.shard_store(*shard);
            match op {
                ReplicaOp::Add(n) => {
                    store
                        .update(var, idx, |cur| {
                            // Classification guarantees every program write
                            // to this variable is an increment, so non-int
                            // values can only come from hand-installed
                            // tables; coerce them to 0 rather than fail a
                            // flush that can no longer be attributed to a
                            // packet.
                            Ok::<_, std::convert::Infallible>(Value::Int(
                                cur.as_int().unwrap_or(0) + n,
                            ))
                        })
                        .unwrap();
                }
                ReplicaOp::Set(v) => {
                    store.set_at(var, idx, v.clone());
                }
            }
        }
        if let Some(shards) = self.shards {
            let mut flushed = vec![false; shards.num_shards()];
            for (_, _, _, shard) in &deltas {
                if !flushed[*shard] {
                    flushed[*shard] = true;
                    shards.note_flush(*shard);
                }
            }
        }
        self.guard = None;
    }

    /// State actions applied through this lease, buffered or exact (summed
    /// into the per-switch `switch.state_writes` family at group end).
    pub fn state_writes(&self) -> u64 {
        self.writes
    }
}

/// Errors surfaced by packet execution.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The ingress port is not attached to any switch.
    UnknownPort(PortId),
    /// A packet was forwarded more than the hop budget allows (routing loop
    /// or unreachable state/egress switch).
    HopBudgetExceeded,
    /// The program's outport is not an external port of the topology.
    BadOutPort(Value),
    /// Evaluation failed (missing field, bad increment, ...).
    Eval(EvalError),
}

impl From<EvalError> for SimError {
    fn from(e: EvalError) -> Self {
        SimError::Eval(e)
    }
}

/// Processing status carried in the SNAP header of an in-flight packet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Progress {
    /// Still walking the diagram; the dense flat id of the next node to
    /// process (the §4.5 packet tag).
    AtNode(FlatId),
    /// Executing a specific action sequence of a leaf, from an action offset.
    InLeaf {
        /// The leaf being executed.
        node: FlatId,
        /// Which of the leaf's parallel sequences this copy runs.
        seq: usize,
        /// Offset of the next action within the sequence.
        offset: usize,
    },
    /// Processing finished; the packet just needs to reach its egress.
    Done,
}

/// An in-flight packet: payload plus SNAP header.
#[derive(Clone, Debug)]
pub struct InFlight {
    /// The packet payload (headers included).
    pub pkt: Packet,
    /// The OBS port the packet entered at.
    pub inport: PortId,
    /// The switch currently holding the packet.
    pub at: SwitchId,
    /// Where in the program processing stands.
    pub progress: Progress,
    /// Hops taken so far (checked against the hop budget).
    pub hops: usize,
}

impl InFlight {
    /// A packet freshly arrived at its ingress switch, about to start the
    /// program at `root`.
    pub fn ingress(pkt: Packet, inport: PortId, at: SwitchId, root: FlatId) -> InFlight {
        InFlight {
            pkt,
            inport,
            at,
            progress: Progress::AtNode(root),
            hops: 0,
        }
    }
}

/// What one switch-local processing step decided.
pub enum StepOutcome<'p> {
    /// Processing finished; deliver the flight's packet (left in
    /// `flight.pkt` — the driver takes it without a clone) to the given
    /// egress port.
    Emit(PortId),
    /// The packet was dropped (by a drop leaf or a dropping sequence).
    Dropped,
    /// The program needs a state variable this switch does not own; forward
    /// towards its owner and resume there. Borrowed from the program — the
    /// hot path never clones the variable name.
    NeedState(&'p StateVar),
    /// A parallel leaf forked the packet into one copy per sequence.
    Fork(Vec<InFlight>),
}

/// Run a packet at one switch until it emits, drops, forks, or needs state
/// the switch does not own. `local_vars` is the set of state variables this
/// switch holds; `store` is a lease on its state shard (which may wrap no
/// shard only when `local_vars` is empty). Passing the same lease for every
/// packet of a batch visiting this switch amortizes the shard lock to one
/// acquisition per group.
///
/// `tables` must be the table compilation of `flat`: stateless spans are
/// resolved through the dispatch stages (one field load + one lookup per
/// collapsed run) instead of branch by branch; only state tests evaluate
/// against the store, branch by branch, as before.
///
/// `trace` is the hop record of a sampled packet, if this flight is being
/// traced: the state variables tested and written at this switch are
/// appended to it. `None` (every unsampled packet) costs a branch per
/// state access.
pub fn process_at_switch<'p>(
    local_vars: &BTreeSet<StateVar>,
    flat: &'p FlatProgram,
    tables: &TableProgram,
    store: &mut StoreLease<'_>,
    flight: &mut InFlight,
    mut trace: Option<&mut HopRecord>,
) -> Result<StepOutcome<'p>, SimError> {
    loop {
        match flight.progress {
            Progress::Done => {
                // Processing already finished elsewhere; figure the
                // outport out of the packet and keep delivering.
                let outport = read_outport(&flight.pkt)?;
                return Ok(StepOutcome::Emit(outport));
            }
            Progress::AtNode(idx) => {
                // Table-dispatch the whole stateless span, then handle
                // whatever stopped it: a state test or a leaf.
                let reached = tables.advance_stateless(flat, idx, &flight.pkt);
                if !reached.is_leaf() {
                    let FlatNode::Branch {
                        test,
                        var,
                        tru,
                        fls,
                    } = flat.node(reached)
                    else {
                        unreachable!("advance_stateless stops at branches or leaves")
                    };
                    let var = var.expect("the stateless prefix stops only at state tests");
                    if !local_vars.contains(var) {
                        // The tag must record how far the walk got: the
                        // packet resumes at the state test, not at `idx`.
                        flight.progress = Progress::AtNode(reached);
                        return Ok(StepOutcome::NeedState(var));
                    }
                    if let Some(h) = trace.as_deref_mut() {
                        h.state_tests.push(var.to_string());
                    }
                    let passed = store
                        .state_test(test, &flight.pkt)
                        .expect("switch owning state has a store shard")?;
                    flight.progress = Progress::AtNode(if passed { tru } else { fls });
                    continue;
                }
                let leaf = flat.leaf(reached);
                if leaf.seqs.is_empty() {
                    return Ok(StepOutcome::Dropped);
                }
                if leaf.seqs.len() == 1 {
                    flight.progress = Progress::InLeaf {
                        node: reached,
                        seq: 0,
                        offset: 0,
                    };
                } else {
                    // Fork one in-flight copy per parallel sequence.
                    let children = (0..leaf.seqs.len())
                        .map(|s| InFlight {
                            pkt: flight.pkt.clone(),
                            inport: flight.inport,
                            at: flight.at,
                            progress: Progress::InLeaf {
                                node: reached,
                                seq: s,
                                offset: 0,
                            },
                            hops: flight.hops,
                        })
                        .collect();
                    return Ok(StepOutcome::Fork(children));
                }
            }
            Progress::InLeaf { node, seq, offset } => {
                let sequence = &flat.leaf(node).seqs[seq];
                let mut off = offset;
                while off < sequence.actions.len() {
                    let action = &sequence.actions[off];
                    match action {
                        Action::Modify(f, v) => {
                            flight.pkt.set(f.clone(), v.clone());
                        }
                        Action::StateSet { var, .. }
                        | Action::StateIncr { var, .. }
                        | Action::StateDecr { var, .. } => {
                            if !local_vars.contains(var) {
                                flight.progress = Progress::InLeaf {
                                    node,
                                    seq,
                                    offset: off,
                                };
                                return Ok(StepOutcome::NeedState(var));
                            }
                            if let Some(h) = trace.as_deref_mut() {
                                h.state_writes.push(var.to_string());
                            }
                            store
                                .apply_action(flat.state_class(var), action, &flight.pkt)
                                .expect("switch with state has a store")?;
                        }
                    }
                    off += 1;
                }
                if sequence.drops {
                    return Ok(StepOutcome::Dropped);
                }
                let outport = read_outport(&flight.pkt)?;
                return Ok(StepOutcome::Emit(outport));
            }
        }
    }
}

/// The first hop of a shortest path for every switch pair, precomputed once
/// so per-packet forwarding is two array loads instead of a BFS per hop.
#[derive(Clone, Debug)]
pub struct NextHops {
    /// `table[from][to]`: the first hop of a shortest path.
    table: Vec<Vec<Option<SwitchId>>>,
    /// `dist[from][to]`: hop distance along that path (`usize::MAX` when
    /// unreachable). Lets the driver fast-forward a packet whose remaining
    /// journey is pure forwarding in one jump instead of one wave per hop.
    dist: Vec<Vec<usize>>,
}

impl NextHops {
    /// Precompute the table for a topology.
    pub fn compute(topology: &Topology) -> NextHops {
        let n = topology.num_nodes();
        // Reverse adjacency: dist_to[t][u] is the hop distance from u to t,
        // computed by a BFS from t over reversed links.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for u in topology.nodes() {
            for &(v, _) in topology.neighbors(u) {
                rev[v.0].push(u.0);
            }
        }
        let mut next = vec![vec![None; n]; n];
        let mut dists = vec![vec![usize::MAX; n]; n];
        let mut dist = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for t in 0..n {
            dist.fill(usize::MAX);
            dist[t] = 0;
            queue.clear();
            queue.push_back(t);
            while let Some(u) = queue.pop_front() {
                let d = dist[u];
                for &w in &rev[u] {
                    if dist[w] == usize::MAX {
                        dist[w] = d + 1;
                        queue.push_back(w);
                    }
                }
            }
            for u in topology.nodes() {
                dists[u.0][t] = dist[u.0];
                if u.0 == t || dist[u.0] == usize::MAX {
                    continue;
                }
                // First neighbor strictly closer to t: deterministic and on
                // a shortest path, so hop counts match a per-hop BFS.
                next[u.0][t] = topology
                    .neighbors(u)
                    .iter()
                    .map(|&(v, _)| v)
                    .find(|v| dist[v.0] == dist[u.0] - 1);
            }
        }
        NextHops {
            table: next,
            dist: dists,
        }
    }

    /// The first hop from `from` towards `to`, if `to` is reachable.
    #[inline]
    pub fn hop(&self, from: SwitchId, to: SwitchId) -> Option<SwitchId> {
        self.table[from.0][to.0]
    }

    /// Hop distance of the shortest path, if `to` is reachable from `from`.
    #[inline]
    pub fn distance(&self, from: SwitchId, to: SwitchId) -> Option<usize> {
        match self.dist[from.0][to.0] {
            usize::MAX => None,
            d => Some(d),
        }
    }

    /// Advance an in-flight packet one hop towards a target switch.
    /// Reaching the target (or already being there) is not a hop.
    pub fn forward_towards(&self, flight: &mut InFlight, target: SwitchId) -> Result<(), SimError> {
        if flight.at == target {
            return Ok(());
        }
        let hop = self
            .hop(flight.at, target)
            .ok_or(SimError::HopBudgetExceeded)?;
        flight.at = hop;
        flight.hops += 1;
        Ok(())
    }

    /// Fast-forward an in-flight packet all the way to a target switch,
    /// charging the full shortest-path hop count in one step.
    ///
    /// Behaviorally identical to calling [`NextHops::forward_towards`] once
    /// per wave until arrival — intermediate switches could only have
    /// forwarded the packet again (its progress is parked at a state test
    /// another switch owns, or it is done and travelling to egress), and the
    /// hop-budget check is monotone in the hop count, so charging the hops
    /// up front trips the budget exactly when per-hop stepping would have.
    pub fn jump_towards(&self, flight: &mut InFlight, target: SwitchId) -> Result<(), SimError> {
        if flight.at == target {
            return Ok(());
        }
        let d = self
            .distance(flight.at, target)
            .ok_or(SimError::HopBudgetExceeded)?;
        flight.at = target;
        flight.hops += d;
        Ok(())
    }
}

/// The error for a state variable the running placement does not map to any
/// switch.
pub fn missing_placement_error(var: &StateVar) -> SimError {
    SimError::Eval(EvalError::MissingField(Field::Custom(format!(
        "no placement for state variable {var}"
    ))))
}

/// The error for a variable whose placement names the *current* switch
/// while that switch's configuration does not own it — inconsistent
/// metadata that would otherwise spin a packet in place forever.
pub fn misplaced_state_error(var: &StateVar) -> SimError {
    SimError::Eval(EvalError::MissingField(Field::Custom(format!(
        "state variable {var} placed on a switch that does not own it"
    ))))
}

/// The OBS egress port the program assigned to a packet.
pub fn read_outport(pkt: &Packet) -> Result<PortId, SimError> {
    match pkt.get(&Field::OutPort) {
        Some(Value::Int(p)) if *p >= 0 => Ok(PortId(*p as usize)),
        Some(other) => Err(SimError::BadOutPort(other.clone())),
        None => Err(SimError::BadOutPort(Value::Int(-1))),
    }
}

/// Apply one state action against a switch's store. `Modify` actions are
/// packet-local and ignored here.
pub fn apply_state_action(
    action: &Action,
    pkt: &Packet,
    store: &mut Store,
) -> Result<(), EvalError> {
    INDEX_SCRATCH.with(|cell| {
        let idx = &mut *cell.borrow_mut();
        match action {
            Action::Modify(_, _) => return Ok(()),
            Action::StateSet { index, .. }
            | Action::StateIncr { index, .. }
            | Action::StateDecr { index, .. } => {
                snap_lang::eval_index_into(index, pkt, idx)?;
            }
        }
        apply_state_action_at(action, pkt, idx, store)
    })
}

/// Apply one state action whose index vector is already evaluated into
/// `idx` — the sharded lease evaluates the index first (it needs the key to
/// route to a shard) and then applies here without re-evaluating.
fn apply_state_action_at(
    action: &Action,
    pkt: &Packet,
    idx: &[Value],
    store: &mut Store,
) -> Result<(), EvalError> {
    match action {
        Action::Modify(_, _) => Ok(()),
        Action::StateSet { var, value, .. } => {
            let val = snap_lang::eval_expr(value, pkt)?;
            store.set_at(var, idx, val);
            Ok(())
        }
        Action::StateIncr { var, .. } | Action::StateDecr { var, .. } => {
            let delta = if matches!(action, Action::StateIncr { .. }) {
                1
            } else {
                -1
            };
            store.update(var, idx, |cur| {
                let n = cur.as_int().ok_or_else(|| EvalError::NotAnInteger {
                    var: var.clone(),
                    value: cur.clone(),
                })?;
                Ok(Value::Int(n + delta))
            })
        }
    }
}

/// Remove simulator-internal `snap.*` header fields before a packet leaves
/// the network.
pub fn strip_snap_header(pkt: &mut Packet) {
    // The simulator keeps its bookkeeping outside the packet, so the only
    // header field added by the pipeline itself is the OBS outport; keep it,
    // since the OBS program set it explicitly. Custom `snap.*` fields, if a
    // rule generator added any, are removed here.
    pkt.retain(|f, _| !matches!(f, Field::Custom(name) if name.starts_with("snap.")));
}
