//! The per-switch execution core under the one generic driver
//! ([`crate::driver`]).
//!
//! Every plane executes packets the same way: resolve the stateless spans
//! of the dense [`FlatProgram`] through its table compilation
//! ([`TableProgram`] — one field load and one indexed lookup per collapsed
//! test run), pause at state the local switch does not own, fork at
//! parallel leaves, and emit towards an egress port. The driver owns the
//! dispatch loop; this module holds the machinery underneath it: the
//! in-flight packet representation ([`InFlight`], [`Progress`]), the
//! single-switch step ([`process_at_switch`], [`StepOutcome`]), the
//! lazily-acquired per-group store lease ([`StoreLease`], which tallies
//! its own lock acquisitions and state writes for the per-instance
//! telemetry registry), the precomputed shortest-path next-hop table
//! ([`NextHops`]) and the small packet-header helpers.
//!
//! The process-wide `store_lock_acquisitions` / `wave_prefix_stats`
//! statics that used to live here are gone: they were shared by every
//! `Network` in a process, so concurrently running tests contaminated
//! each other's readings. Their successors are per-instance counters on
//! [`crate::PlaneTelemetry`], fed from the [`StoreLease`] tallies and the
//! driver's wave-prefix pass.

use parking_lot::{Mutex, MutexGuard};
use snap_lang::{EvalError, Field, Packet, StateVar, Store, Value};
use snap_telemetry::HopRecord;
use snap_topology::{NodeId as SwitchId, PortId, Topology};
use snap_xfdd::{eval_test, Action, FlatId, FlatNode, FlatProgram, TableProgram};
use std::collections::BTreeSet;

/// A lazily acquired lease on one switch's store shard.
///
/// The driver creates one lease per (switch, batch-group): the first state
/// access locks the shard and the guard is then held until the lease drops
/// at the end of the group, so a batch of packets visiting the same switch
/// pays one lock acquisition instead of one per access. Stateless traffic
/// never locks at all — the guard is only taken when a state test or state
/// action actually needs the store.
pub struct StoreLease<'a> {
    mutex: Option<&'a Mutex<Store>>,
    guard: Option<MutexGuard<'a, Store>>,
    locks: u64,
    writes: u64,
}

impl<'a> StoreLease<'a> {
    /// A lease over a switch's shard (`None` for a switch with no shard —
    /// every state access will then report the missing store).
    pub fn new(store: Option<&'a Mutex<Store>>) -> StoreLease<'a> {
        StoreLease {
            mutex: store,
            guard: None,
            locks: 0,
            writes: 0,
        }
    }

    /// Run `f` against the shard, locking it on first use and keeping the
    /// guard for the lease's lifetime. `None` when the switch has no shard.
    pub fn with<T>(&mut self, f: impl FnOnce(&mut Store) -> T) -> Option<T> {
        let mutex = self.mutex?;
        let guard = match &mut self.guard {
            Some(guard) => guard,
            slot @ None => {
                self.locks += 1;
                slot.insert(mutex.lock())
            }
        };
        Some(f(guard))
    }

    /// Lock acquisitions this lease performed (0 or 1 per lease; the
    /// driver sums them into the per-instance
    /// `driver.store_lock_acquisitions` counter at group end).
    pub fn lock_acquisitions(&self) -> u64 {
        self.locks
    }

    /// State actions applied through this lease (summed into the
    /// per-switch `switch.state_writes` family at group end).
    pub fn state_writes(&self) -> u64 {
        self.writes
    }
}

/// Errors surfaced by packet execution.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The ingress port is not attached to any switch.
    UnknownPort(PortId),
    /// A packet was forwarded more than the hop budget allows (routing loop
    /// or unreachable state/egress switch).
    HopBudgetExceeded,
    /// The program's outport is not an external port of the topology.
    BadOutPort(Value),
    /// Evaluation failed (missing field, bad increment, ...).
    Eval(EvalError),
}

impl From<EvalError> for SimError {
    fn from(e: EvalError) -> Self {
        SimError::Eval(e)
    }
}

/// Processing status carried in the SNAP header of an in-flight packet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Progress {
    /// Still walking the diagram; the dense flat id of the next node to
    /// process (the §4.5 packet tag).
    AtNode(FlatId),
    /// Executing a specific action sequence of a leaf, from an action offset.
    InLeaf {
        /// The leaf being executed.
        node: FlatId,
        /// Which of the leaf's parallel sequences this copy runs.
        seq: usize,
        /// Offset of the next action within the sequence.
        offset: usize,
    },
    /// Processing finished; the packet just needs to reach its egress.
    Done,
}

/// An in-flight packet: payload plus SNAP header.
#[derive(Clone, Debug)]
pub struct InFlight {
    /// The packet payload (headers included).
    pub pkt: Packet,
    /// The OBS port the packet entered at.
    pub inport: PortId,
    /// The switch currently holding the packet.
    pub at: SwitchId,
    /// Where in the program processing stands.
    pub progress: Progress,
    /// Hops taken so far (checked against the hop budget).
    pub hops: usize,
}

impl InFlight {
    /// A packet freshly arrived at its ingress switch, about to start the
    /// program at `root`.
    pub fn ingress(pkt: Packet, inport: PortId, at: SwitchId, root: FlatId) -> InFlight {
        InFlight {
            pkt,
            inport,
            at,
            progress: Progress::AtNode(root),
            hops: 0,
        }
    }
}

/// What one switch-local processing step decided.
pub enum StepOutcome<'p> {
    /// Processing finished; deliver the flight's packet (left in
    /// `flight.pkt` — the driver takes it without a clone) to the given
    /// egress port.
    Emit(PortId),
    /// The packet was dropped (by a drop leaf or a dropping sequence).
    Dropped,
    /// The program needs a state variable this switch does not own; forward
    /// towards its owner and resume there. Borrowed from the program — the
    /// hot path never clones the variable name.
    NeedState(&'p StateVar),
    /// A parallel leaf forked the packet into one copy per sequence.
    Fork(Vec<InFlight>),
}

/// Run a packet at one switch until it emits, drops, forks, or needs state
/// the switch does not own. `local_vars` is the set of state variables this
/// switch holds; `store` is a lease on its state shard (which may wrap no
/// shard only when `local_vars` is empty). Passing the same lease for every
/// packet of a batch visiting this switch amortizes the shard lock to one
/// acquisition per group.
///
/// `tables` must be the table compilation of `flat`: stateless spans are
/// resolved through the dispatch stages (one field load + one lookup per
/// collapsed run) instead of branch by branch; only state tests evaluate
/// against the store, branch by branch, as before.
///
/// `trace` is the hop record of a sampled packet, if this flight is being
/// traced: the state variables tested and written at this switch are
/// appended to it. `None` (every unsampled packet) costs a branch per
/// state access.
pub fn process_at_switch<'p>(
    local_vars: &BTreeSet<StateVar>,
    flat: &'p FlatProgram,
    tables: &TableProgram,
    store: &mut StoreLease<'_>,
    flight: &mut InFlight,
    mut trace: Option<&mut HopRecord>,
) -> Result<StepOutcome<'p>, SimError> {
    loop {
        match flight.progress {
            Progress::Done => {
                // Processing already finished elsewhere; figure the
                // outport out of the packet and keep delivering.
                let outport = read_outport(&flight.pkt)?;
                return Ok(StepOutcome::Emit(outport));
            }
            Progress::AtNode(idx) => {
                // Table-dispatch the whole stateless span, then handle
                // whatever stopped it: a state test or a leaf.
                let reached = tables.advance_stateless(flat, idx, &flight.pkt);
                if !reached.is_leaf() {
                    let FlatNode::Branch {
                        test,
                        var,
                        tru,
                        fls,
                    } = flat.node(reached)
                    else {
                        unreachable!("advance_stateless stops at branches or leaves")
                    };
                    let var = var.expect("the stateless prefix stops only at state tests");
                    if !local_vars.contains(var) {
                        // The tag must record how far the walk got: the
                        // packet resumes at the state test, not at `idx`.
                        flight.progress = Progress::AtNode(reached);
                        return Ok(StepOutcome::NeedState(var));
                    }
                    if let Some(h) = trace.as_deref_mut() {
                        h.state_tests.push(var.to_string());
                    }
                    let passed = store
                        .with(|s| eval_test(test, &flight.pkt, s))
                        .expect("switch owning state has a store shard")?;
                    flight.progress = Progress::AtNode(if passed { tru } else { fls });
                    continue;
                }
                let leaf = flat.leaf(reached);
                if leaf.seqs.is_empty() {
                    return Ok(StepOutcome::Dropped);
                }
                if leaf.seqs.len() == 1 {
                    flight.progress = Progress::InLeaf {
                        node: reached,
                        seq: 0,
                        offset: 0,
                    };
                } else {
                    // Fork one in-flight copy per parallel sequence.
                    let children = (0..leaf.seqs.len())
                        .map(|s| InFlight {
                            pkt: flight.pkt.clone(),
                            inport: flight.inport,
                            at: flight.at,
                            progress: Progress::InLeaf {
                                node: reached,
                                seq: s,
                                offset: 0,
                            },
                            hops: flight.hops,
                        })
                        .collect();
                    return Ok(StepOutcome::Fork(children));
                }
            }
            Progress::InLeaf { node, seq, offset } => {
                let sequence = &flat.leaf(node).seqs[seq];
                let mut off = offset;
                while off < sequence.actions.len() {
                    let action = &sequence.actions[off];
                    match action {
                        Action::Modify(f, v) => {
                            flight.pkt.set(f.clone(), v.clone());
                        }
                        Action::StateSet { var, .. }
                        | Action::StateIncr { var, .. }
                        | Action::StateDecr { var, .. } => {
                            if !local_vars.contains(var) {
                                flight.progress = Progress::InLeaf {
                                    node,
                                    seq,
                                    offset: off,
                                };
                                return Ok(StepOutcome::NeedState(var));
                            }
                            if let Some(h) = trace.as_deref_mut() {
                                h.state_writes.push(var.to_string());
                            }
                            store
                                .with(|s| apply_state_action(action, &flight.pkt, s))
                                .expect("switch with state has a store")?;
                            store.writes += 1;
                        }
                    }
                    off += 1;
                }
                if sequence.drops {
                    return Ok(StepOutcome::Dropped);
                }
                let outport = read_outport(&flight.pkt)?;
                return Ok(StepOutcome::Emit(outport));
            }
        }
    }
}

/// The first hop of a shortest path for every switch pair, precomputed once
/// so per-packet forwarding is two array loads instead of a BFS per hop.
#[derive(Clone, Debug)]
pub struct NextHops {
    /// `table[from][to]`: the first hop of a shortest path.
    table: Vec<Vec<Option<SwitchId>>>,
    /// `dist[from][to]`: hop distance along that path (`usize::MAX` when
    /// unreachable). Lets the driver fast-forward a packet whose remaining
    /// journey is pure forwarding in one jump instead of one wave per hop.
    dist: Vec<Vec<usize>>,
}

impl NextHops {
    /// Precompute the table for a topology.
    pub fn compute(topology: &Topology) -> NextHops {
        let n = topology.num_nodes();
        // Reverse adjacency: dist_to[t][u] is the hop distance from u to t,
        // computed by a BFS from t over reversed links.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for u in topology.nodes() {
            for &(v, _) in topology.neighbors(u) {
                rev[v.0].push(u.0);
            }
        }
        let mut next = vec![vec![None; n]; n];
        let mut dists = vec![vec![usize::MAX; n]; n];
        let mut dist = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for t in 0..n {
            dist.fill(usize::MAX);
            dist[t] = 0;
            queue.clear();
            queue.push_back(t);
            while let Some(u) = queue.pop_front() {
                let d = dist[u];
                for &w in &rev[u] {
                    if dist[w] == usize::MAX {
                        dist[w] = d + 1;
                        queue.push_back(w);
                    }
                }
            }
            for u in topology.nodes() {
                dists[u.0][t] = dist[u.0];
                if u.0 == t || dist[u.0] == usize::MAX {
                    continue;
                }
                // First neighbor strictly closer to t: deterministic and on
                // a shortest path, so hop counts match a per-hop BFS.
                next[u.0][t] = topology
                    .neighbors(u)
                    .iter()
                    .map(|&(v, _)| v)
                    .find(|v| dist[v.0] == dist[u.0] - 1);
            }
        }
        NextHops {
            table: next,
            dist: dists,
        }
    }

    /// The first hop from `from` towards `to`, if `to` is reachable.
    #[inline]
    pub fn hop(&self, from: SwitchId, to: SwitchId) -> Option<SwitchId> {
        self.table[from.0][to.0]
    }

    /// Hop distance of the shortest path, if `to` is reachable from `from`.
    #[inline]
    pub fn distance(&self, from: SwitchId, to: SwitchId) -> Option<usize> {
        match self.dist[from.0][to.0] {
            usize::MAX => None,
            d => Some(d),
        }
    }

    /// Advance an in-flight packet one hop towards a target switch.
    /// Reaching the target (or already being there) is not a hop.
    pub fn forward_towards(&self, flight: &mut InFlight, target: SwitchId) -> Result<(), SimError> {
        if flight.at == target {
            return Ok(());
        }
        let hop = self
            .hop(flight.at, target)
            .ok_or(SimError::HopBudgetExceeded)?;
        flight.at = hop;
        flight.hops += 1;
        Ok(())
    }

    /// Fast-forward an in-flight packet all the way to a target switch,
    /// charging the full shortest-path hop count in one step.
    ///
    /// Behaviorally identical to calling [`NextHops::forward_towards`] once
    /// per wave until arrival — intermediate switches could only have
    /// forwarded the packet again (its progress is parked at a state test
    /// another switch owns, or it is done and travelling to egress), and the
    /// hop-budget check is monotone in the hop count, so charging the hops
    /// up front trips the budget exactly when per-hop stepping would have.
    pub fn jump_towards(&self, flight: &mut InFlight, target: SwitchId) -> Result<(), SimError> {
        if flight.at == target {
            return Ok(());
        }
        let d = self
            .distance(flight.at, target)
            .ok_or(SimError::HopBudgetExceeded)?;
        flight.at = target;
        flight.hops += d;
        Ok(())
    }
}

/// The error for a state variable the running placement does not map to any
/// switch.
pub fn missing_placement_error(var: &StateVar) -> SimError {
    SimError::Eval(EvalError::MissingField(Field::Custom(format!(
        "no placement for state variable {var}"
    ))))
}

/// The error for a variable whose placement names the *current* switch
/// while that switch's configuration does not own it — inconsistent
/// metadata that would otherwise spin a packet in place forever.
pub fn misplaced_state_error(var: &StateVar) -> SimError {
    SimError::Eval(EvalError::MissingField(Field::Custom(format!(
        "state variable {var} placed on a switch that does not own it"
    ))))
}

/// The OBS egress port the program assigned to a packet.
pub fn read_outport(pkt: &Packet) -> Result<PortId, SimError> {
    match pkt.get(&Field::OutPort) {
        Some(Value::Int(p)) if *p >= 0 => Ok(PortId(*p as usize)),
        Some(other) => Err(SimError::BadOutPort(other.clone())),
        None => Err(SimError::BadOutPort(Value::Int(-1))),
    }
}

/// Apply one state action against a switch's store shard. `Modify` actions
/// are packet-local and ignored here.
pub fn apply_state_action(
    action: &Action,
    pkt: &Packet,
    store: &mut Store,
) -> Result<(), EvalError> {
    // One reusable index buffer per thread: state writes evaluate their
    // index vector into it instead of allocating a fresh `Vec` per packet,
    // and the store only clones the index on an entry's first write.
    thread_local! {
        static INDEX_SCRATCH: std::cell::RefCell<Vec<Value>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    match action {
        Action::Modify(_, _) => Ok(()),
        Action::StateSet { var, index, value } => INDEX_SCRATCH.with(|cell| {
            let idx = &mut *cell.borrow_mut();
            snap_lang::eval_index_into(index, pkt, idx)?;
            let val = snap_lang::eval_expr(value, pkt)?;
            store.set_at(var, idx, val);
            Ok(())
        }),
        Action::StateIncr { var, index } | Action::StateDecr { var, index } => {
            let delta = if matches!(action, Action::StateIncr { .. }) {
                1
            } else {
                -1
            };
            INDEX_SCRATCH.with(|cell| {
                let idx = &mut *cell.borrow_mut();
                snap_lang::eval_index_into(index, pkt, idx)?;
                store.update(var, idx, |cur| {
                    let n = cur.as_int().ok_or_else(|| EvalError::NotAnInteger {
                        var: var.clone(),
                        value: cur.clone(),
                    })?;
                    Ok(Value::Int(n + delta))
                })
            })
        }
    }
}

/// Remove simulator-internal `snap.*` header fields before a packet leaves
/// the network.
pub fn strip_snap_header(pkt: &mut Packet) {
    // The simulator keeps its bookkeeping outside the packet, so the only
    // header field added by the pipeline itself is the OBS outport; keep it,
    // since the OBS program set it explicitly. Custom `snap.*` fields, if a
    // rule generator added any, are removed here.
    pkt.retain(|f, _| !matches!(f, Field::Custom(name) if name.starts_with("snap.")));
}
