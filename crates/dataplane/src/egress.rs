//! Per-port ordered egress queues with bounded depth and backpressure
//! accounting — the model of a real switch's output queues.
//!
//! The [`crate::TrafficEngine`] collects egress into flat per-worker `Vec`s,
//! which is the right shape for measuring aggregate throughput but says
//! nothing about *delivery*: real ports drain in FIFO order and push back
//! when full. Distribution-driven traffic (the `snap-distrib` agents)
//! delivers through an [`EgressQueues`] instead: one bounded FIFO per
//! external port, a monotone per-port sequence number stamped under the
//! queue lock (so FIFO order stays checkable across drains), and a dropped
//! counter per port that stands in for backpressure — when a queue is full
//! the event is tail-dropped and counted, never silently lost *and* never
//! blocking the packet pipeline.

use parking_lot::Mutex;
use snap_lang::Packet;
use snap_topology::PortId;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// One delivered packet, as it sits in a port queue.
#[derive(Clone, Debug)]
pub struct EgressEvent {
    /// The delivered packet.
    pub packet: Packet,
    /// The configuration epoch the packet was processed under.
    pub epoch: u64,
    /// Per-port arrival sequence number (monotone per port, assigned under
    /// the queue lock at enqueue time).
    pub seq: u64,
}

struct PortQueue {
    buf: Mutex<VecDeque<EgressEvent>>,
    /// Next per-port sequence number. Guarded by `buf`'s lock (kept separate
    /// so drains don't reset it); atomic only to stay `Sync` without a
    /// second lock order.
    next_seq: AtomicU64,
    enqueued: AtomicU64,
    dropped: AtomicU64,
}

impl PortQueue {
    fn new() -> PortQueue {
        PortQueue {
            buf: Mutex::new(VecDeque::new()),
            next_seq: AtomicU64::new(0),
            enqueued: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }
}

/// A set of bounded per-port FIFO egress queues.
pub struct EgressQueues {
    queues: BTreeMap<PortId, PortQueue>,
    capacity: usize,
}

/// Default per-port queue depth.
pub const DEFAULT_QUEUE_CAPACITY: usize = 4096;

impl EgressQueues {
    /// Queues for the given ports, each bounded at `capacity` events
    /// (minimum 1).
    pub fn new(ports: impl IntoIterator<Item = PortId>, capacity: usize) -> EgressQueues {
        EgressQueues {
            queues: ports.into_iter().map(|p| (p, PortQueue::new())).collect(),
            capacity: capacity.max(1),
        }
    }

    /// The configured per-port depth bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The ports this queue set serves.
    pub fn ports(&self) -> impl Iterator<Item = PortId> + '_ {
        self.queues.keys().copied()
    }

    /// Enqueue a delivery on a port. Returns `true` if the event was queued,
    /// `false` if the queue was full (the event is tail-dropped and the
    /// port's backpressure counter incremented) or the port is not served
    /// here.
    pub fn push(&self, port: PortId, packet: Packet, epoch: u64) -> bool {
        let Some(q) = self.queues.get(&port) else {
            return false;
        };
        let mut buf = q.buf.lock();
        if buf.len() >= self.capacity {
            q.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let seq = q.next_seq.fetch_add(1, Ordering::Relaxed);
        buf.push_back(EgressEvent { packet, epoch, seq });
        q.enqueued.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Drain everything currently queued on a port, in FIFO order.
    pub fn drain(&self, port: PortId) -> Vec<EgressEvent> {
        match self.queues.get(&port) {
            Some(q) => q.buf.lock().drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// Drain every port, in port order.
    pub fn drain_all(&self) -> BTreeMap<PortId, Vec<EgressEvent>> {
        self.queues.keys().map(|&p| (p, self.drain(p))).collect()
    }

    /// Current depth of a port's queue.
    pub fn depth(&self, port: PortId) -> usize {
        self.queues.get(&port).map_or(0, |q| q.buf.lock().len())
    }

    /// Events tail-dropped on a port because its queue was full.
    pub fn dropped(&self, port: PortId) -> u64 {
        self.queues
            .get(&port)
            .map_or(0, |q| q.dropped.load(Ordering::Relaxed))
    }

    /// Events successfully enqueued on a port since construction.
    pub fn enqueued(&self, port: PortId) -> u64 {
        self.queues
            .get(&port)
            .map_or(0, |q| q.enqueued.load(Ordering::Relaxed))
    }

    /// Total backpressure drops across all ports.
    pub fn total_dropped(&self) -> u64 {
        self.queues
            .values()
            .map(|q| q.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Total events enqueued across all ports since construction.
    pub fn total_enqueued(&self) -> u64 {
        self.queues
            .values()
            .map(|q| q.enqueued.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(i: i64) -> Packet {
        Packet::new().with(snap_lang::Field::SrcPort, i)
    }

    #[test]
    fn fifo_order_and_sequence_numbers() {
        let q = EgressQueues::new([PortId(1), PortId(2)], 16);
        for i in 0..5 {
            assert!(q.push(PortId(1), pkt(i), 7));
        }
        let events = q.drain(PortId(1));
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.epoch, 7);
        }
        // Sequence numbers continue across drains.
        assert!(q.push(PortId(1), pkt(9), 8));
        assert_eq!(q.drain(PortId(1))[0].seq, 5);
        assert!(q.drain(PortId(2)).is_empty());
    }

    #[test]
    fn bounded_depth_tail_drops_and_counts() {
        let q = EgressQueues::new([PortId(3)], 2);
        assert!(q.push(PortId(3), pkt(0), 0));
        assert!(q.push(PortId(3), pkt(1), 0));
        assert!(!q.push(PortId(3), pkt(2), 0), "third push must tail-drop");
        assert_eq!(q.depth(PortId(3)), 2);
        assert_eq!(q.dropped(PortId(3)), 1);
        assert_eq!(q.total_dropped(), 1);
        assert_eq!(q.enqueued(PortId(3)), 2);
        // Draining frees capacity again.
        assert_eq!(q.drain(PortId(3)).len(), 2);
        assert!(q.push(PortId(3), pkt(3), 1));
        assert_eq!(q.total_enqueued(), 3);
    }

    #[test]
    fn unknown_port_is_rejected_not_counted() {
        let q = EgressQueues::new([PortId(1)], 4);
        assert!(!q.push(PortId(99), pkt(0), 0));
        assert_eq!(q.total_dropped(), 0);
        assert_eq!(q.total_enqueued(), 0);
    }

    #[test]
    fn concurrent_pushes_keep_per_thread_order() {
        use std::sync::Arc;
        let q = Arc::new(EgressQueues::new([PortId(1)], 1 << 16));
        std::thread::scope(|scope| {
            for t in 0..4i64 {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    for i in 0..200i64 {
                        q.push(
                            PortId(1),
                            Packet::new()
                                .with(snap_lang::Field::SrcPort, t)
                                .with(snap_lang::Field::DstPort, i),
                            0,
                        );
                    }
                });
            }
        });
        let events = q.drain(PortId(1));
        assert_eq!(events.len(), 800);
        // Global seqs are strictly increasing, and each thread's packets
        // appear in its own push order (FIFO per source).
        let mut last_global = None;
        let mut last_per_thread = [None::<i64>; 4];
        for e in &events {
            assert!(last_global.is_none_or(|g| e.seq > g));
            last_global = Some(e.seq);
            let t = match e.packet.get(&snap_lang::Field::SrcPort) {
                Some(snap_lang::Value::Int(t)) => *t as usize,
                _ => unreachable!(),
            };
            let i = match e.packet.get(&snap_lang::Field::DstPort) {
                Some(snap_lang::Value::Int(i)) => *i,
                _ => unreachable!(),
            };
            assert!(last_per_thread[t].is_none_or(|prev| i > prev));
            last_per_thread[t] = Some(i);
        }
    }
}
