//! Indexed (node-addressable) xFDDs.
//!
//! The rule-generation phase of the compiler (§4.5) tags packets with "the id
//! of the last processed xFDD node" so that the next switch on the path can
//! resume processing where the previous one stopped. That requires stable
//! node identifiers, which this module provides by flattening an [`Xfdd`]
//! into an array of nodes in preorder.

use serde::{Deserialize, Serialize};
use snap_lang::{Packet, StateVar, Store};
use snap_xfdd::{Leaf, Test, Xfdd};
use std::collections::BTreeSet;

/// Identifier of a node inside an [`IndexedXfdd`].
pub type NodeIdx = usize;

/// A node of an indexed xFDD.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum IndexedNode {
    /// A branch on a test.
    Branch {
        /// The test.
        test: Test,
        /// Node taken when the test passes.
        tru: NodeIdx,
        /// Node taken when the test fails.
        fls: NodeIdx,
    },
    /// A leaf (set of action sequences).
    Leaf(Leaf),
}

/// An xFDD flattened into an indexable array of nodes (preorder; the root is
/// node 0).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IndexedXfdd {
    nodes: Vec<IndexedNode>,
}

impl IndexedXfdd {
    /// Flatten a diagram.
    pub fn from_xfdd(d: &Xfdd) -> Self {
        let mut nodes = Vec::new();
        flatten(d, &mut nodes);
        IndexedXfdd { nodes }
    }

    /// The root node id (always 0).
    pub fn root(&self) -> NodeIdx {
        0
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the program empty (cannot happen for programs built from an xFDD)?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node.
    pub fn node(&self, idx: NodeIdx) -> &IndexedNode {
        &self.nodes[idx]
    }

    /// Iterate over `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeIdx, &IndexedNode)> {
        self.nodes.iter().enumerate()
    }

    /// The state variables referenced at or below each node id.
    pub fn state_vars(&self) -> BTreeSet<StateVar> {
        let mut out = BTreeSet::new();
        for n in &self.nodes {
            match n {
                IndexedNode::Branch { test, .. } => {
                    if let Some(v) = test.state_var() {
                        out.insert(v.clone());
                    }
                }
                IndexedNode::Leaf(l) => out.extend(l.written_vars()),
            }
        }
        out
    }

    /// Evaluate the whole program on a packet and store (equivalent to
    /// [`Xfdd::evaluate`]); used in tests to check the flattening.
    pub fn evaluate(
        &self,
        pkt: &Packet,
        store: &Store,
    ) -> Result<(BTreeSet<Packet>, Store), snap_lang::EvalError> {
        let mut idx = self.root();
        loop {
            match self.node(idx) {
                IndexedNode::Branch { test, tru, fls } => {
                    idx = if Xfdd::eval_test(test, pkt, store)? {
                        *tru
                    } else {
                        *fls
                    };
                }
                IndexedNode::Leaf(l) => return l.apply(pkt, store),
            }
        }
    }
}

fn flatten(d: &Xfdd, nodes: &mut Vec<IndexedNode>) -> NodeIdx {
    match d {
        Xfdd::Leaf(l) => {
            let idx = nodes.len();
            nodes.push(IndexedNode::Leaf(l.clone()));
            idx
        }
        Xfdd::Branch { test, tru, fls } => {
            let idx = nodes.len();
            // Reserve the slot so children ids come after the parent.
            nodes.push(IndexedNode::Leaf(Leaf::drop()));
            let t = flatten(tru, nodes);
            let f = flatten(fls, nodes);
            nodes[idx] = IndexedNode::Branch {
                test: test.clone(),
                tru: t,
                fls: f,
            };
            idx
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_lang::builder::*;
    use snap_lang::{Field, Value};
    use snap_xfdd::{to_xfdd, StateDependencies};

    fn build(p: &snap_lang::Policy) -> IndexedXfdd {
        let deps = StateDependencies::analyze(p);
        let d = to_xfdd(p, &deps.var_order()).unwrap();
        IndexedXfdd::from_xfdd(&d)
    }

    #[test]
    fn flattening_preserves_node_count() {
        let p = ite(
            test(Field::SrcPort, Value::Int(53)),
            state_incr("c", vec![field(Field::DstIp)]),
            id(),
        );
        let deps = StateDependencies::analyze(&p);
        let d = to_xfdd(&p, &deps.var_order()).unwrap();
        let ix = IndexedXfdd::from_xfdd(&d);
        assert_eq!(ix.len(), d.size());
        assert_eq!(ix.root(), 0);
        assert!(!ix.is_empty());
        assert!(matches!(ix.node(0), IndexedNode::Branch { .. }));
    }

    #[test]
    fn indexed_evaluation_matches_xfdd() {
        let p = ite(
            test(Field::SrcPort, Value::Int(53)),
            state_incr("c", vec![field(Field::DstIp)]).seq(modify(Field::OutPort, Value::Int(6))),
            modify(Field::OutPort, Value::Int(1)),
        );
        let deps = StateDependencies::analyze(&p);
        let d = to_xfdd(&p, &deps.var_order()).unwrap();
        let ix = IndexedXfdd::from_xfdd(&d);
        for srcport in [53i64, 80] {
            let pkt = Packet::new()
                .with(Field::SrcPort, srcport)
                .with(Field::DstIp, Value::ip(1, 2, 3, 4));
            let a = d.evaluate(&pkt, &Store::new()).unwrap();
            let b = ix.evaluate(&pkt, &Store::new()).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn state_vars_are_collected() {
        let p = ite(
            state_truthy("blacklist", vec![field(Field::SrcIp)]),
            drop(),
            state_incr("count", vec![field(Field::InPort)]),
        );
        let ix = build(&p);
        let vars = ix.state_vars();
        assert!(vars.contains(&"blacklist".into()));
        assert!(vars.contains(&"count".into()));
    }

    #[test]
    fn children_come_after_parents() {
        let p = ite(
            test(Field::SrcPort, Value::Int(53)),
            ite(test(Field::DstPort, Value::Int(80)), id(), drop()),
            drop(),
        );
        let ix = build(&p);
        for (idx, node) in ix.iter() {
            if let IndexedNode::Branch { tru, fls, .. } = node {
                assert!(*tru > idx);
                assert!(*fls > idx);
            }
        }
    }
}
