//! A concurrent network simulator that executes a *distributed* SNAP
//! program: per-switch xFDD fragments, per-switch state tables and
//! hop-by-hop forwarding with a SNAP header that records how far into the
//! diagram a packet has progressed (§4.5).
//!
//! The dataplane is split RCU-style into two halves:
//!
//! * an immutable [`ConfigSnapshot`] — per-switch configurations, the shared
//!   [`FlatProgram`], the state-variable placement and the epoch — published
//!   behind an `Arc`. Packet workers grab a snapshot per packet (or per
//!   batch) and process against it without further coordination; a packet
//!   therefore never mixes two configurations, no matter how many
//!   [`Network::swap_configs`] calls race with it.
//! * sharded mutable state: one [`StateShards`] per switch (`K`
//!   independently-locked key-range partitions plus per-shard contention
//!   counters), shared *across* snapshots so state survives recompiles.
//!   The paper's invariant that each state variable lives on exactly one
//!   switch pins a variable to one switch; within that switch its keys
//!   spread over the shards, so workers serialize only when they hit the
//!   same key range — and commuting updates (see
//!   [`snap_xfdd::StateClass`]) don't lock at all, merging per-worker
//!   replica deltas at batch-group boundaries.
//!
//! [`Network::inject`] takes `&self`: traffic and recompile-and-swap run
//! concurrently. [`Network::swap_configs`] builds the next snapshot on the
//! side (migrating state tables whose owner moved) and publishes it with one
//! pointer store — readers never block on a recompile.
//!
//! Per-switch execution walks the dense [`FlatProgram`] lowered from the
//! hash-consed xFDD: the flat node ids *are* the packet tag, so a switch
//! resumes processing at the recorded id with pure index arithmetic, and the
//! "every switch carries the full diagram" requirement costs one `Arc`
//! clone per switch.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use snap_lang::{Packet, StateVar, Store};
use snap_xfdd::{FlatProgram, TableProgram, Xfdd};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::driver::{Driver, EgressSink, HopView, ViewResolver};
use crate::egress::EgressQueues;
use crate::exec::NextHops;
pub use crate::exec::SimError;
use crate::metrics::{export_shards, PlaneTelemetry};
use crate::shards::{StateShards, DEFAULT_STATE_SHARDS};
use snap_telemetry::{MetricsSnapshot, Telemetry};
use snap_topology::{NodeId as SwitchId, PortId, Topology};

/// Per-switch configuration produced by rule generation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SwitchConfig {
    /// The switch this configuration belongs to.
    pub node: SwitchId,
    /// The state variables stored on this switch.
    pub local_vars: BTreeSet<StateVar>,
    /// The program. Every switch carries the full (shared, interned) diagram
    /// but only executes the parts whose state it owns; the SNAP header
    /// records where processing stopped. Installing the configuration
    /// flattens the diagram once into the [`FlatProgram`] all switches
    /// execute.
    pub program: Xfdd,
    /// OBS external ports attached to this switch.
    pub ports: BTreeSet<PortId>,
}

impl SwitchConfig {
    /// Build one configuration per switch of `topology`: every switch
    /// carries `program`, external ports are derived from the topology, and
    /// state variables are placed per `owners` (switches absent from the
    /// map own nothing). The single constructor behind rule generation,
    /// tests and benches, so the config shape has one source of truth.
    pub fn for_topology(
        topology: &Topology,
        program: &Xfdd,
        owners: &BTreeMap<SwitchId, BTreeSet<StateVar>>,
    ) -> Vec<SwitchConfig> {
        let mut ports_per_switch: BTreeMap<SwitchId, BTreeSet<PortId>> = BTreeMap::new();
        for (port, node) in topology.external_ports() {
            ports_per_switch.entry(node).or_default().insert(port);
        }
        topology
            .nodes()
            .map(|n| SwitchConfig {
                node: n,
                local_vars: owners.get(&n).cloned().unwrap_or_default(),
                program: program.clone(),
                ports: ports_per_switch.remove(&n).unwrap_or_default(),
            })
            .collect()
    }
}

/// One immutable, atomically-swappable configuration of the whole network:
/// per-switch configs, the shared flattened program, the state placement and
/// the per-switch store handles, all stamped with an epoch.
///
/// Snapshots are published behind an `Arc` by [`Network::swap_configs`];
/// a packet (or batch) is processed entirely against one snapshot, so it can
/// never observe half of an old configuration and half of a new one. The
/// store handles are shared across snapshots — state survives swaps — while
/// everything else is immutable once published.
pub struct ConfigSnapshot {
    configs: BTreeMap<SwitchId, SwitchConfig>,
    /// The shared program, flattened once at install time. `None` when no
    /// programs are installed.
    flat: Option<Arc<FlatProgram>>,
    /// The table compilation of `flat` (same flat ids, per-field dispatch
    /// stages), built alongside it at install time. `Some` iff `flat` is.
    tables: Option<Arc<TableProgram>>,
    /// Which switch holds each state variable (derived from the configs).
    placement: BTreeMap<StateVar, SwitchId>,
    /// Per-switch key-range state shards. Shared across snapshots; each
    /// variable's table lives on exactly one switch (its owner's), split
    /// across that switch's shards by index hash.
    stores: BTreeMap<SwitchId, Arc<StateShards>>,
    /// Configuration epoch: 0 at construction, bumped by every
    /// [`Network::swap_configs`].
    epoch: u64,
}

impl ConfigSnapshot {
    /// This snapshot's configuration epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The switch a state variable lives on under this snapshot.
    pub fn owner(&self, var: &StateVar) -> Option<SwitchId> {
        self.placement.get(var).copied()
    }

    /// The shared flattened program, if any is installed.
    pub fn program(&self) -> Option<&Arc<FlatProgram>> {
        self.flat.as_ref()
    }

    /// The table compilation of the installed program, if any — the hot
    /// path the driver actually dispatches through.
    pub fn tables(&self) -> Option<&Arc<TableProgram>> {
        self.tables.as_ref()
    }

    /// The configuration installed on a switch.
    pub fn config(&self, switch: SwitchId) -> Option<&SwitchConfig> {
        self.configs.get(&switch)
    }
}

/// Per-switch configurations, indexed and validated: every config must hold
/// a handle on the *same* interned pool and root, since the packet tag of
/// one switch dereferences another switch's program.
struct IndexedConfigs {
    map: BTreeMap<SwitchId, SwitchConfig>,
    flat: Option<Arc<FlatProgram>>,
    tables: Option<Arc<TableProgram>>,
    placement: BTreeMap<StateVar, SwitchId>,
}

fn index_configs(configs: Vec<SwitchConfig>) -> IndexedConfigs {
    let mut placement = BTreeMap::new();
    let mut map = BTreeMap::new();
    let mut root = None;
    let mut pool: Option<*const snap_xfdd::Pool> = None;
    let mut shared: Option<&Xfdd> = None;
    for c in &configs {
        // NodeIds are only meaningful within their own arena: every
        // config must hold a handle on the same interned pool (rule
        // generation guarantees this), otherwise the packet tag of one
        // switch would dereference another switch's program.
        let c_pool = c.program.pool() as *const _;
        assert!(
            *pool.get_or_insert(c_pool) == c_pool,
            "switch {:?} carries a program from a different xFDD pool",
            c.node
        );
        assert!(
            *root.get_or_insert(c.program.root()) == c.program.root(),
            "switch {:?} carries a program with a different root",
            c.node
        );
        shared.get_or_insert(&c.program);
    }
    // One flattening pass for the whole network: the dense ids are the
    // packet tags, so every switch must execute the *same* flat program.
    // The dispatch tables are compiled right next to it — same ids, so
    // they agree on every switch by construction.
    let flat = shared.map(|program| Arc::new(program.flatten()));
    let tables = flat.as_ref().map(|f| Arc::new(TableProgram::compile(f)));
    for c in configs {
        for v in &c.local_vars {
            placement.insert(v.clone(), c.node);
        }
        map.insert(c.node, c);
    }
    IndexedConfigs {
        map,
        flat,
        tables,
        placement,
    }
}

/// The result of injecting a batch of packets under one configuration
/// snapshot. Results are per packet: one packet failing (bad outport,
/// missing field, ...) does not discard the egress of the packets that
/// already completed — their state side effects have happened either way.
#[derive(Clone, Debug)]
pub struct BatchOutput {
    /// The epoch of the snapshot every packet of the batch ran against.
    pub epoch: u64,
    /// Per-packet egress sets (or the packet's error), in batch order.
    pub outputs: Vec<Result<BTreeSet<(PortId, Packet)>, SimError>>,
}

/// The distributed network: an immutable topology, an atomically-swappable
/// [`ConfigSnapshot`] and sharded per-switch state.
pub struct Network {
    topology: Topology,
    /// First hop of a shortest path per switch pair, precomputed once so
    /// per-packet forwarding is two array loads instead of a BFS.
    next_hop: NextHops,
    /// The current snapshot. The mutex guards only the `Arc` pointer: a
    /// reader clones it and drops the lock, so the critical section is a
    /// refcount bump — nobody holds it across packet processing, let alone
    /// a recompile.
    snapshot: Mutex<Arc<ConfigSnapshot>>,
    /// Serializes writers: concurrent [`Network::swap_configs`] calls
    /// migrate state one at a time while readers keep flowing.
    swap_lock: Mutex<()>,
    /// Maximum number of hops a packet may take before the simulator reports
    /// a routing loop.
    hop_budget: usize,
    /// This instance's telemetry plane (pre-registered driver handles).
    /// `None` disables all recording — every injection pays one branch per
    /// observation site and nothing else.
    telemetry: Option<Arc<PlaneTelemetry>>,
    /// Shards per switch, used when a swap creates a store for a switch
    /// that had none (see [`Network::with_state_shards`]).
    state_shards: usize,
}

/// Default hop budget (see [`Network::with_hop_budget`]).
pub const DEFAULT_HOP_BUDGET: usize = 256;

impl Network {
    /// Build a network from per-switch configurations.
    pub fn new(topology: Topology, configs: Vec<SwitchConfig>) -> Self {
        let indexed = index_configs(configs);
        let stores = indexed
            .map
            .keys()
            .map(|&n| (n, Arc::new(StateShards::new(DEFAULT_STATE_SHARDS))))
            .collect();
        let next_hop = NextHops::compute(&topology);
        let telemetry = Some(PlaneTelemetry::new(Telemetry::new(), &topology));
        Network {
            topology,
            next_hop,
            snapshot: Mutex::new(Arc::new(ConfigSnapshot {
                configs: indexed.map,
                flat: indexed.flat,
                tables: indexed.tables,
                placement: indexed.placement,
                stores,
                epoch: 0,
            })),
            swap_lock: Mutex::new(()),
            hop_budget: DEFAULT_HOP_BUDGET,
            telemetry,
            state_shards: DEFAULT_STATE_SHARDS,
        }
    }

    /// Set the number of key-range state shards per switch (default
    /// [`DEFAULT_STATE_SHARDS`]). Construction-time only: the network must
    /// not have processed traffic yet, since existing (empty) shards are
    /// replaced.
    pub fn with_state_shards(mut self, k: usize) -> Self {
        self.state_shards = k.max(1);
        let snap = Arc::get_mut(self.snapshot.get_mut())
            .expect("with_state_shards is construction-time only");
        for store in snap.stores.values_mut() {
            *store = Arc::new(StateShards::new(self.state_shards));
        }
        self
    }

    /// Record this network's metrics into `telemetry` instead of the
    /// private instance created by [`Network::new`] — used by the
    /// distribution plane to share one registry between the controller,
    /// the agents and the packet driver.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(PlaneTelemetry::new(telemetry, &self.topology));
        self
    }

    /// Disable telemetry entirely: no counters, no traces. This is the
    /// baseline leg of the bench's overhead guard.
    pub fn without_telemetry(mut self) -> Self {
        self.telemetry = None;
        self
    }

    /// This network's telemetry handles, if enabled.
    pub fn telemetry(&self) -> Option<&Arc<PlaneTelemetry>> {
        self.telemetry.as_ref()
    }

    /// Snapshot this instance's metrics, traces and events, enriched with
    /// the current configuration epoch (gauge `network.epoch`) and each
    /// switch's per-shard store contention (`store.shard.*` families, read
    /// off the shards at snapshot time). Returns an empty snapshot when
    /// telemetry is disabled.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let Some(t) = &self.telemetry else {
            return MetricsSnapshot::default();
        };
        t.telemetry()
            .registry()
            .gauge("network.epoch")
            .set(self.current_epoch() as i64);
        let mut out = t.telemetry().snapshot();
        let snap = self.snapshot();
        for (node, shards) in &snap.stores {
            export_shards(&mut out, self.topology.node_name(*node), shards);
        }
        out
    }

    /// Set the hop budget at construction time (default
    /// [`DEFAULT_HOP_BUDGET`]): the maximum number of hops a packet may take
    /// before the simulator reports [`SimError::HopBudgetExceeded`] instead
    /// of spinning on a loopy configuration.
    pub fn with_hop_budget(mut self, budget: usize) -> Self {
        self.hop_budget = budget;
        self
    }

    /// Change the hop budget of a network that is not yet shared.
    pub fn set_hop_budget(&mut self, budget: usize) {
        self.hop_budget = budget;
    }

    /// The current hop budget.
    pub fn hop_budget(&self) -> usize {
        self.hop_budget
    }

    /// The network's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The current configuration snapshot. The returned `Arc` stays valid
    /// (and internally consistent) however many swaps happen after this
    /// call.
    pub fn snapshot(&self) -> Arc<ConfigSnapshot> {
        self.snapshot.lock().clone()
    }

    /// The current configuration epoch (how many times
    /// [`Self::swap_configs`] replaced the running program). The one
    /// canonical epoch read — a lock, a load and a drop, no snapshot clone.
    pub fn current_epoch(&self) -> u64 {
        self.snapshot.lock().epoch
    }

    /// Atomically replace every switch's configuration with a freshly
    /// compiled set — the controller's recompile-and-push step — without
    /// stopping traffic or losing switch state. Takes `&self`: packet
    /// workers keep injecting throughout; each packet runs against whichever
    /// snapshot was current when it entered, never a mix. Variables whose
    /// owner moved have their state tables migrated to the new owner;
    /// variables no longer placed anywhere have their tables *dropped*, so
    /// re-placing the same name later deterministically starts fresh
    /// wherever it lands (rather than resurrecting stale state only when
    /// the optimizer happens to pick the old switch). Returns the new
    /// epoch.
    ///
    /// The new configs may come from a different xFDD pool than the old
    /// ones (they must still all share one pool among themselves): the swap
    /// publishes program, root and placement together in one snapshot, so
    /// no packet ever resolves an old node id against a new program.
    ///
    /// Consistency caveat: table migration happens eagerly on the shared
    /// store shards, so when a variable's owner *moves* (or the variable is
    /// dropped), a packet still executing against the previous snapshot can
    /// race with the migration — a write it performs on the old owner after
    /// the table moved lands in a fresh table and is orphaned. Packets that
    /// start after the swap are always consistent. Controllers that need
    /// exactly-once state transfer under live traffic should keep a
    /// variable's placement stable across updates (the session's placement
    /// reuse does this automatically when mapping and dependencies are
    /// unchanged) or quiesce injection around an owner move; full
    /// migration consistency under owner moves needs reader quiescence and
    /// is future work (see ROADMAP).
    pub fn swap_configs(&self, configs: Vec<SwitchConfig>) -> u64 {
        let _writer = self.swap_lock.lock();
        let cur = self.snapshot();
        let indexed = index_configs(configs);
        // The store shards are shared with the current snapshot (state
        // survives the swap); migrate tables owned by a different switch
        // under the new placement, and drop tables of variables the new
        // program no longer places.
        let mut stores = cur.stores.clone();
        for (var, &old_owner) in &cur.placement {
            // Removing a variable unions its key-disjoint per-shard
            // partials back into one exact table; installing it on the new
            // owner redistributes the entries across that switch's shards.
            let take = |stores: &BTreeMap<SwitchId, Arc<StateShards>>| {
                stores.get(&old_owner).and_then(|s| s.remove_var(var))
            };
            match indexed.placement.get(var) {
                Some(&new_owner) if new_owner != old_owner => {
                    if let Some(table) = take(&stores) {
                        stores
                            .entry(new_owner)
                            .or_insert_with(|| Arc::new(StateShards::new(self.state_shards)))
                            .insert_table(var.clone(), table);
                    }
                }
                Some(_) => {} // same owner: table stays put
                None => {
                    take(&stores);
                }
            }
        }
        for &n in indexed.map.keys() {
            stores
                .entry(n)
                .or_insert_with(|| Arc::new(StateShards::new(self.state_shards)));
        }
        let epoch = cur.epoch + 1;
        let next = Arc::new(ConfigSnapshot {
            configs: indexed.map,
            flat: indexed.flat,
            tables: indexed.tables,
            placement: indexed.placement,
            stores,
            epoch,
        });
        *self.snapshot.lock() = next;
        epoch
    }

    /// The switch a state variable lives on.
    pub fn owner(&self, var: &StateVar) -> Option<SwitchId> {
        self.snapshot.lock().owner(var)
    }

    /// Merge the per-switch state tables into a single OBS-level store
    /// (each variable lives on exactly one switch, so this is a disjoint
    /// union).
    ///
    /// Shard locks are taken one at a time, per table: listing a switch's
    /// variables and unioning a table's per-shard partials each lock one
    /// shard at a time, so a switch with a huge table cannot stall packet
    /// workers for the duration of the whole clone. Replicated (commuting)
    /// updates buffered by in-flight batch groups merge at group
    /// boundaries, so a concurrent aggregate may lag them by at most one
    /// group; totals are exact once the workers have joined.
    pub fn aggregate_store(&self) -> Store {
        let snap = self.snapshot();
        let mut out = Store::new();
        for (node, store) in &snap.stores {
            let Some(config) = snap.configs.get(node) else {
                continue;
            };
            for var in store.variables() {
                if !config.local_vars.contains(&var) {
                    continue;
                }
                if let Some(table) = store.collect_table(&var) {
                    out.insert_table(var, table);
                }
            }
        }
        out
    }

    /// The shared packet driver over this network's topology, next-hop
    /// table and hop budget.
    fn driver(&self) -> Driver<'_> {
        Driver::new(&self.topology, &self.next_hop, self.hop_budget)
            .with_metrics(self.telemetry.as_deref())
    }

    /// Inject a packet at an OBS external port and run it to completion
    /// against the current configuration snapshot. Returns the set of
    /// `(egress port, packet)` pairs that leave the network.
    pub fn inject(
        &self,
        port: PortId,
        packet: &Packet,
    ) -> Result<BTreeSet<(PortId, Packet)>, SimError> {
        let snap = self.snapshot();
        let resolver = SnapshotResolver { snap: &snap };
        let mut sink = SetSink::for_batch(1);
        let batch = [(port, packet)];
        let mut results = self.driver().run_batch(&resolver, &mut sink, &batch);
        results
            .pop()
            .expect("one result per packet")
            .map(|_| sink.outputs.pop().expect("one egress set per packet"))
    }

    /// Inject a batch of packets, all against the *same* configuration
    /// snapshot (one snapshot load for the whole batch). Execution is
    /// batched per switch by the shared driver: in-flight packets at the
    /// same switch drain under a single store-lock acquisition, so state
    /// writes from *different* packets of one batch may interleave (each
    /// packet's own semantics are unchanged, and every packet of the batch
    /// observed the same epoch).
    pub fn inject_batch(&self, batch: &[(PortId, Packet)]) -> BatchOutput {
        let snap = self.snapshot();
        let resolver = SnapshotResolver { snap: &snap };
        let mut sink = SetSink::for_batch(batch.len());
        let results = self.driver().run_batch(&resolver, &mut sink, batch);
        let outputs = results
            .into_iter()
            .zip(sink.outputs)
            .map(|(result, set)| result.map(|_| set))
            .collect();
        BatchOutput {
            epoch: snap.epoch,
            outputs,
        }
    }

    /// The allocation-lean egress path behind the traffic engine: the same
    /// events as [`Network::inject_batch`], but each packet's egress is
    /// collected as a sorted, deduplicated `Vec` instead of a tree set —
    /// one flat buffer per packet on the hot path rather than a node
    /// allocation per delivery.
    pub(crate) fn inject_batch_lists(&self, batch: &[(PortId, Packet)]) -> BatchLists {
        let snap = self.snapshot();
        let resolver = SnapshotResolver { snap: &snap };
        let mut sink = ListSink {
            outputs: batch.iter().map(|_| Vec::new()).collect(),
        };
        let results = self.driver().run_batch(&resolver, &mut sink, batch);
        let outputs = results
            .into_iter()
            .zip(sink.outputs)
            .map(|(result, mut list)| {
                result.map(|_| {
                    // Exactly the set shape: sorted, duplicates collapsed.
                    list.sort_unstable();
                    list.dedup();
                    list
                })
            })
            .collect();
        (snap.epoch, outputs)
    }

    /// Inject a batch whose egress is *delivered* rather than collected:
    /// every emitted packet is pushed onto its port's bounded FIFO queue in
    /// `queues` (tail-dropping and counting backpressure when full), in
    /// addition to the per-packet result lists. This is the [`Network`]
    /// counterpart of the distributed plane's queued egress, sharing the
    /// same driver and the same [`EgressQueues`] semantics — including
    /// that a delivery already enqueued is *not* retracted if a later copy
    /// of the same packet fails (the per-packet `Err` discards only the
    /// result list; the queue is a wire, and its enqueue/drop counters
    /// keep counting such deliveries).
    pub fn inject_batch_queued(
        &self,
        batch: &[(PortId, Packet)],
        queues: &EgressQueues,
    ) -> QueuedBatchOutput {
        let snap = self.snapshot();
        let resolver = SnapshotResolver { snap: &snap };
        let mut sink = QueueSink {
            queues,
            outputs: batch.iter().map(|_| Vec::new()).collect(),
            drops: 0,
        };
        let results = self.driver().run_batch(&resolver, &mut sink, batch);
        let outputs = results
            .into_iter()
            .zip(sink.outputs)
            .map(|(result, list)| result.map(|_| list))
            .collect();
        QueuedBatchOutput {
            epoch: snap.epoch,
            outputs,
            backpressure_drops: sink.drops,
        }
    }

    /// Inject a sequence of packets (a trace) and collect every egress
    /// event. Each packet runs against the then-current snapshot.
    pub fn inject_trace(
        &self,
        trace: &[(PortId, Packet)],
    ) -> Result<Vec<BTreeSet<(PortId, Packet)>>, SimError> {
        trace
            .iter()
            .map(|(port, pkt)| self.inject(*port, pkt))
            .collect()
    }
}

/// The result of a queued batch injection ([`Network::inject_batch_queued`]).
#[derive(Clone, Debug)]
pub struct QueuedBatchOutput {
    /// The epoch of the snapshot every packet of the batch ran against.
    pub epoch: u64,
    /// Per-packet egress events (also enqueued on the port queues unless
    /// tail-dropped), or the packet's error, in batch order.
    pub outputs: Vec<Result<Vec<(PortId, Packet)>, SimError>>,
    /// Deliveries tail-dropped by a full egress queue (still listed in
    /// `outputs`; the loss is a queue property, not a processing one).
    pub backpressure_drops: u64,
}

/// [`ViewResolver`] over one RCU snapshot: every hop of every packet sees
/// the same epoch, program and placement — the single-pointer-swap
/// consistency story expressed through the shared driver's seam.
struct SnapshotResolver<'a> {
    snap: &'a ConfigSnapshot,
}

/// One switch's view under a snapshot.
struct SnapshotView<'a> {
    config: &'a SwitchConfig,
    flat: &'a FlatProgram,
    tables: &'a TableProgram,
    placement: &'a BTreeMap<StateVar, SwitchId>,
}

impl HopView for SnapshotView<'_> {
    fn flat(&self) -> &FlatProgram {
        self.flat
    }

    fn tables(&self) -> &TableProgram {
        self.tables
    }

    fn local_vars(&self) -> &BTreeSet<StateVar> {
        &self.config.local_vars
    }

    fn serves_port(&self, port: PortId) -> bool {
        self.config.ports.contains(&port)
    }

    fn owner(&self, var: &StateVar) -> Option<SwitchId> {
        self.placement.get(var).copied()
    }
}

impl ViewResolver for SnapshotResolver<'_> {
    type View<'v>
        = SnapshotView<'v>
    where
        Self: 'v;
    type Error = SimError;

    fn ingress(&self, _switch: SwitchId) -> Result<Option<(u64, snap_xfdd::FlatId)>, SimError> {
        // No programs installed: packets vanish with empty egress.
        Ok(self.snap.flat.as_ref().map(|f| (self.snap.epoch, f.root())))
    }

    fn resolve(&self, switch: SwitchId, _epoch: u64) -> Result<Option<SnapshotView<'_>>, SimError> {
        let Some(config) = self.snap.configs.get(&switch) else {
            return Ok(None); // a switch without a config only forwards
        };
        let flat = self
            .snap
            .flat
            .as_deref()
            .expect("a non-empty config set always carries a flattened program");
        let tables = self
            .snap
            .tables
            .as_deref()
            .expect("the table program is compiled wherever the flat one is");
        Ok(Some(SnapshotView {
            config,
            flat,
            tables,
            placement: &self.snap.placement,
        }))
    }

    fn store(&self, switch: SwitchId) -> Option<&StateShards> {
        self.snap.stores.get(&switch).map(|s| s.as_ref())
    }
}

/// Collects per-packet egress sets — the `Network`'s classic result shape.
struct SetSink {
    outputs: Vec<BTreeSet<(PortId, Packet)>>,
}

impl SetSink {
    fn for_batch(n: usize) -> SetSink {
        SetSink {
            outputs: vec![BTreeSet::new(); n],
        }
    }
}

impl EgressSink for SetSink {
    fn deliver(&mut self, origin: usize, _at: SwitchId, port: PortId, pkt: Packet, _epoch: u64) {
        self.outputs[origin].insert((port, pkt));
    }
}

/// What [`Network::inject_batch_lists`] returns: the batch's epoch plus each
/// packet's egress as a sorted, deduplicated list (or its error).
pub(crate) type BatchLists = (u64, Vec<Result<Vec<(PortId, Packet)>, SimError>>);

/// Collects per-packet egress as flat lists — the traffic engine's shape.
struct ListSink {
    outputs: Vec<Vec<(PortId, Packet)>>,
}

impl EgressSink for ListSink {
    fn deliver(&mut self, origin: usize, _at: SwitchId, port: PortId, pkt: Packet, _epoch: u64) {
        self.outputs[origin].push((port, pkt));
    }
}

/// Delivers into bounded per-port FIFO queues while keeping per-packet
/// result lists and a backpressure count.
struct QueueSink<'a> {
    queues: &'a EgressQueues,
    outputs: Vec<Vec<(PortId, Packet)>>,
    drops: u64,
}

impl EgressSink for QueueSink<'_> {
    fn deliver(&mut self, origin: usize, _at: SwitchId, port: PortId, pkt: Packet, epoch: u64) {
        if !self.queues.push(port, pkt.clone(), epoch) {
            self.drops += 1;
        }
        self.outputs[origin].push((port, pkt));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_lang::builder::*;
    use snap_lang::{Field, Policy, Value};
    use snap_topology::generators::campus;

    /// Build a network for `policy` on the campus topology with all state on
    /// the named switch. All configs share one interned program.
    fn campus_network(policy: &Policy, state_switch: &str) -> Network {
        let topo = campus();
        Network::new(topo.clone(), campus_configs(policy, state_switch))
    }

    fn assign_egress_stateless() -> Policy {
        // Forward to port 6 when dstip is in 10.0.6.0/24, else to port 1.
        ite(
            test_prefix(Field::DstIp, 10, 0, 6, 0, 24),
            modify(Field::OutPort, Value::Int(6)),
            modify(Field::OutPort, Value::Int(1)),
        )
    }

    #[test]
    fn stateless_forwarding_reaches_the_right_port() {
        let policy = assign_egress_stateless();
        let net = campus_network(&policy, "D4");
        let pkt = Packet::new()
            .with(Field::SrcIp, Value::ip(10, 0, 1, 9))
            .with(Field::DstIp, Value::ip(10, 0, 6, 9));
        let out = net.inject(PortId(1), &pkt).unwrap();
        assert_eq!(out.len(), 1);
        let (port, delivered) = out.into_iter().next().unwrap();
        assert_eq!(port, PortId(6));
        assert_eq!(delivered.get(&Field::OutPort), Some(&Value::Int(6)));
    }

    #[test]
    fn stateful_counting_happens_on_the_state_switch() {
        // Count per inport, then forward to port 6.
        let policy = state_incr("count", vec![field(Field::InPort)])
            .seq(modify(Field::OutPort, Value::Int(6)));
        let net = campus_network(&policy, "C6");
        let pkt = Packet::new()
            .with(Field::InPort, 1)
            .with(Field::DstIp, Value::ip(10, 0, 6, 1));
        for _ in 0..3 {
            let out = net.inject(PortId(1), &pkt).unwrap();
            assert_eq!(out.len(), 1);
        }
        let store = net.aggregate_store();
        assert_eq!(store.get(&"count".into(), &[Value::Int(1)]), Value::Int(3));
        // The state lives only on C6.
        let owner = net.owner(&"count".into()).unwrap();
        assert_eq!(net.topology.node_name(owner), "C6");
    }

    #[test]
    fn distributed_execution_matches_obs_eval() {
        // A stateful firewall-ish program plus egress assignment, compared
        // against the one-big-switch semantics packet by packet.
        let policy = ite(
            test_prefix(Field::SrcIp, 10, 0, 6, 0, 24),
            state_set(
                "established",
                vec![field(Field::SrcIp), field(Field::DstIp)],
                Value::Bool(true),
            ),
            ite(
                state_truthy(
                    "established",
                    vec![field(Field::DstIp), field(Field::SrcIp)],
                ),
                id(),
                drop(),
            ),
        )
        .seq(ite(
            test_prefix(Field::DstIp, 10, 0, 6, 0, 24),
            modify(Field::OutPort, Value::Int(6)),
            modify(Field::OutPort, Value::Int(1)),
        ));

        let net = campus_network(&policy, "D4");
        let inside = Value::ip(10, 0, 6, 10);
        let outside = Value::ip(10, 0, 1, 20);
        let trace = vec![
            // Outside host tries to reach inside: dropped (no established state).
            (
                PortId(1),
                Packet::new()
                    .with(Field::SrcIp, outside.clone())
                    .with(Field::DstIp, inside.clone()),
            ),
            // Inside host opens a connection outward.
            (
                PortId(6),
                Packet::new()
                    .with(Field::SrcIp, inside.clone())
                    .with(Field::DstIp, outside.clone()),
            ),
            // Now the reverse direction is allowed.
            (
                PortId(1),
                Packet::new()
                    .with(Field::SrcIp, outside)
                    .with(Field::DstIp, inside),
            ),
        ];

        // Reference: one-big-switch evaluation.
        let mut obs_store = Store::new();
        let mut obs_outputs = Vec::new();
        for (_, pkt) in &trace {
            let r = snap_lang::eval(&policy, &obs_store, pkt).unwrap();
            obs_store = r.store;
            obs_outputs.push(r.packets);
        }

        let dist_outputs = net.inject_trace(&trace).unwrap();
        assert_eq!(dist_outputs.len(), obs_outputs.len());
        for (dist, obs) in dist_outputs.iter().zip(obs_outputs.iter()) {
            let dist_pkts: BTreeSet<Packet> = dist.iter().map(|(_, p)| p.clone()).collect();
            assert_eq!(&dist_pkts, obs);
        }
        assert_eq!(net.aggregate_store(), obs_store);
    }

    #[test]
    fn unknown_port_is_reported() {
        let policy = assign_egress_stateless();
        let net = campus_network(&policy, "D4");
        let err = net.inject(PortId(99), &Packet::new()).unwrap_err();
        assert_eq!(err, SimError::UnknownPort(PortId(99)));
    }

    #[test]
    fn parallel_leaf_forks_and_both_copies_are_delivered() {
        // Multicast to ports 1 and 6 simultaneously.
        let policy =
            modify(Field::OutPort, Value::Int(1)).par(modify(Field::OutPort, Value::Int(6)));
        let net = campus_network(&policy, "D4");
        let out = net
            .inject(
                PortId(2),
                &Packet::new().with(Field::SrcIp, Value::ip(1, 1, 1, 1)),
            )
            .unwrap();
        let ports: BTreeSet<PortId> = out.iter().map(|(p, _)| *p).collect();
        assert_eq!(ports, BTreeSet::from([PortId(1), PortId(6)]));
    }

    #[test]
    fn packet_with_no_outport_is_an_error() {
        let policy = Policy::id();
        let net = campus_network(&policy, "D4");
        let err = net.inject(PortId(1), &Packet::new()).unwrap_err();
        assert!(matches!(err, SimError::BadOutPort(_)));
    }

    #[test]
    fn hop_budget_is_configurable_and_enforced() {
        // Egress port 6 (on D4) is several hops from port 1's switch (I1):
        // with a one-hop budget the simulator must report the budget error
        // instead of forwarding forever.
        let policy = modify(Field::OutPort, Value::Int(6));
        let net = campus_network(&policy, "D4").with_hop_budget(1);
        assert_eq!(net.hop_budget(), 1);
        let pkt = Packet::new().with(Field::SrcIp, Value::ip(10, 0, 1, 9));
        let err = net.inject(PortId(1), &pkt).unwrap_err();
        assert_eq!(err, SimError::HopBudgetExceeded);

        // The default budget routes the same packet fine.
        let mut net = campus_network(&policy, "D4");
        assert_eq!(net.hop_budget(), DEFAULT_HOP_BUDGET);
        net.set_hop_budget(64);
        assert_eq!(net.hop_budget(), 64);
        assert_eq!(net.inject(PortId(1), &pkt).unwrap().len(), 1);
    }

    #[test]
    fn state_ping_pong_across_switches_stays_within_budget() {
        // Two variables on two different switches: the packet must visit
        // C1 for `a`, then C6 for `b`, then egress — a multi-hop state
        // itinerary that still terminates well within the default budget.
        let policy = state_incr("a", vec![field(Field::InPort)])
            .seq(state_incr("b", vec![field(Field::InPort)]))
            .seq(modify(Field::OutPort, Value::Int(6)));
        let topo = campus();
        let program = snap_xfdd::compile(&policy).unwrap();
        let owners = BTreeMap::from([
            (
                topo.node_by_name("C1").unwrap(),
                BTreeSet::from(["a".into()]),
            ),
            (
                topo.node_by_name("C6").unwrap(),
                BTreeSet::from(["b".into()]),
            ),
        ]);
        let configs = SwitchConfig::for_topology(&topo, &program, &owners);
        let net = Network::new(topo, configs);
        let pkt = Packet::new().with(Field::InPort, 1);
        let out = net.inject(PortId(1), &pkt).unwrap();
        assert_eq!(out.len(), 1);
        let store = net.aggregate_store();
        assert_eq!(store.get(&"a".into(), &[Value::Int(1)]), Value::Int(1));
        assert_eq!(store.get(&"b".into(), &[Value::Int(1)]), Value::Int(1));

        // And with a tiny budget, the same itinerary is cut off with the
        // budget error rather than spinning.
        let err = {
            let net = campus_network(&policy, "C6").with_hop_budget(0);
            net.inject(PortId(1), &pkt).unwrap_err()
        };
        assert_eq!(err, SimError::HopBudgetExceeded);
    }

    /// The configs a `campus_network` for `policy` would install, without
    /// building a new network.
    fn campus_configs(policy: &Policy, state_switch: &str) -> Vec<SwitchConfig> {
        let topo = campus();
        let program = snap_xfdd::compile(policy).unwrap();
        let owner = topo.node_by_name(state_switch).unwrap();
        let owners = BTreeMap::from([(owner, policy.state_vars())]);
        SwitchConfig::for_topology(&topo, &program, &owners)
    }

    #[test]
    fn swap_configs_bumps_the_epoch_and_replaces_the_program() {
        let count_then_6 = state_incr("count", vec![field(Field::InPort)])
            .seq(modify(Field::OutPort, Value::Int(6)));
        let net = campus_network(&count_then_6, "C6");
        assert_eq!(net.current_epoch(), 0);
        let pkt = Packet::new().with(Field::InPort, 1);
        net.inject(PortId(1), &pkt).unwrap();

        // Recompile with a different egress and swap it in.
        let count_then_1 = state_incr("count", vec![field(Field::InPort)])
            .seq(modify(Field::OutPort, Value::Int(1)));
        let epoch = net.swap_configs(campus_configs(&count_then_1, "C6"));
        assert_eq!(epoch, 1);
        assert_eq!(net.current_epoch(), 1);

        // The new program routes to port 1, and the old counter state
        // survived the swap.
        let out = net.inject(PortId(2), &pkt).unwrap();
        assert_eq!(out.iter().next().unwrap().0, PortId(1));
        assert_eq!(
            net.aggregate_store().get(&"count".into(), &[Value::Int(1)]),
            Value::Int(2)
        );
    }

    #[test]
    fn unplaced_variables_are_dropped_not_resurrected() {
        let counting = state_incr("count", vec![field(Field::InPort)])
            .seq(modify(Field::OutPort, Value::Int(6)));
        let stateless = assign_egress_stateless();
        let net = campus_network(&counting, "C6");
        let pkt = Packet::new().with(Field::InPort, 1);
        for _ in 0..3 {
            net.inject(PortId(1), &pkt).unwrap();
        }

        // Swap to a program that no longer places "count" while its table
        // still holds entries: the table is dropped, not stranded on C6.
        net.swap_configs(campus_configs(&stateless, "C6"));
        assert_eq!(net.owner(&"count".into()), None);
        assert_eq!(
            net.aggregate_store().get(&"count".into(), &[Value::Int(1)]),
            Value::Int(0)
        );

        // Re-placing the variable — on the *same* switch as before — starts
        // fresh rather than resurrecting the old table.
        net.swap_configs(campus_configs(&counting, "C6"));
        net.inject(PortId(1), &pkt).unwrap();
        assert_eq!(
            net.aggregate_store().get(&"count".into(), &[Value::Int(1)]),
            Value::Int(1)
        );
    }

    #[test]
    fn swap_configs_migrates_state_to_the_new_owner() {
        let policy = state_incr("count", vec![field(Field::InPort)])
            .seq(modify(Field::OutPort, Value::Int(6)));
        let net = campus_network(&policy, "C6");
        let pkt = Packet::new().with(Field::InPort, 1);
        for _ in 0..3 {
            net.inject(PortId(1), &pkt).unwrap();
        }
        assert_eq!(
            net.topology.node_name(net.owner(&"count".into()).unwrap()),
            "C6"
        );

        // Same program, state re-placed on D4: the table must move with it.
        net.swap_configs(campus_configs(&policy, "D4"));
        assert_eq!(
            net.topology.node_name(net.owner(&"count".into()).unwrap()),
            "D4"
        );
        assert_eq!(
            net.aggregate_store().get(&"count".into(), &[Value::Int(1)]),
            Value::Int(3)
        );
        // And the counter keeps counting on the new owner.
        net.inject(PortId(1), &pkt).unwrap();
        assert_eq!(
            net.aggregate_store().get(&"count".into(), &[Value::Int(1)]),
            Value::Int(4)
        );
    }

    #[test]
    fn owner_moving_twice_keeps_the_table_intact_across_three_epochs() {
        let policy = state_incr("count", vec![field(Field::InPort)])
            .seq(modify(Field::OutPort, Value::Int(6)));
        let net = campus_network(&policy, "C6");
        let pkt = Packet::new().with(Field::InPort, 1);
        for _ in 0..2 {
            net.inject(PortId(1), &pkt).unwrap();
        }

        // Epoch 1: C6 -> D4. Epoch 2: D4 -> C1. The table follows both
        // moves; a count is taken on each owner along the way.
        assert_eq!(net.swap_configs(campus_configs(&policy, "D4")), 1);
        net.inject(PortId(1), &pkt).unwrap();
        assert_eq!(net.swap_configs(campus_configs(&policy, "C1")), 2);
        net.inject(PortId(1), &pkt).unwrap();

        assert_eq!(
            net.topology.node_name(net.owner(&"count".into()).unwrap()),
            "C1"
        );
        assert_eq!(
            net.aggregate_store().get(&"count".into(), &[Value::Int(1)]),
            Value::Int(4)
        );
        assert_eq!(net.current_epoch(), 2);
    }

    #[test]
    fn snapshots_stay_consistent_across_a_swap() {
        // A snapshot taken before a swap keeps answering with its own
        // epoch, placement and program — the reader-side RCU guarantee.
        let counting = state_incr("count", vec![field(Field::InPort)])
            .seq(modify(Field::OutPort, Value::Int(6)));
        let stateless = assign_egress_stateless();
        let net = campus_network(&counting, "C6");
        let before = net.snapshot();
        net.swap_configs(campus_configs(&stateless, "D4"));
        let after = net.snapshot();
        assert_eq!(before.epoch(), 0);
        assert_eq!(after.epoch(), 1);
        assert!(before.owner(&"count".into()).is_some());
        assert!(after.owner(&"count".into()).is_none());
        // Both snapshots expose a program; they are different flattenings.
        assert!(before.program().is_some());
        assert!(after.program().is_some());
        assert!(!Arc::ptr_eq(
            before.program().unwrap(),
            after.program().unwrap()
        ));
    }

    #[test]
    fn concurrent_injection_during_swaps_sees_consistent_epochs_and_state() {
        // Four injector threads hammer the network with batches while the
        // main thread swaps configurations 16 times. The counter's owner
        // never moves, so every increment lands in the same shard: the
        // total must be *exactly* the number of injected packets, every
        // batch must observe a single valid epoch, and per-worker epochs
        // must be monotone (snapshots are published in order).
        let v6 = state_incr("count", vec![field(Field::InPort)])
            .seq(modify(Field::OutPort, Value::Int(6)));
        let v1 = state_incr("count", vec![field(Field::InPort)])
            .seq(modify(Field::OutPort, Value::Int(1)));
        let net = campus_network(&v6, "C6");

        const WORKERS: usize = 4;
        const BATCHES: usize = 30;
        const BATCH: usize = 8;
        const SWAPS: u64 = 16;

        std::thread::scope(|scope| {
            let net = &net;
            let v1 = &v1;
            let v6 = &v6;
            let mut handles = Vec::new();
            for w in 0..WORKERS {
                handles.push(scope.spawn(move || {
                    let mut last_epoch = 0u64;
                    let mut delivered = 0usize;
                    for b in 0..BATCHES {
                        let batch: Vec<(PortId, Packet)> = (0..BATCH)
                            .map(|i| {
                                (
                                    PortId(1 + (w + b + i) % 6),
                                    Packet::new().with(Field::InPort, 1),
                                )
                            })
                            .collect();
                        let out = net.inject_batch(&batch);
                        assert!(
                            out.epoch >= last_epoch,
                            "epoch went backwards: {} after {last_epoch}",
                            out.epoch
                        );
                        assert!(out.epoch <= SWAPS);
                        last_epoch = out.epoch;
                        for set in out.outputs {
                            let set = set.unwrap();
                            assert_eq!(set.len(), 1, "every packet egresses exactly once");
                            let port = set.iter().next().unwrap().0;
                            assert!(port == PortId(1) || port == PortId(6));
                            delivered += 1;
                        }
                    }
                    delivered
                }));
            }
            for s in 0..SWAPS {
                let policy = if s % 2 == 0 { v1 } else { v6 };
                net.swap_configs(campus_configs(policy, "C6"));
                std::thread::yield_now();
            }
            let delivered: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(delivered, WORKERS * BATCHES * BATCH);
        });

        assert_eq!(net.current_epoch(), SWAPS);
        // Exactly one increment per injected packet survived the swaps.
        assert_eq!(
            net.aggregate_store().get(&"count".into(), &[Value::Int(1)]),
            Value::Int((WORKERS * BATCHES * BATCH) as i64)
        );
    }
}
