//! A network simulator that executes a *distributed* SNAP program: per-switch
//! xFDD fragments, per-switch state tables and hop-by-hop forwarding with a
//! SNAP header that records how far into the diagram a packet has progressed
//! (§4.5).
//!
//! Since the xFDD is hash-consed, its interned [`NodeId`]s *are* the packet
//! tag: a switch resumes processing at the recorded node id directly, and the
//! "every switch carries the full diagram" requirement costs one `Arc` clone
//! per switch instead of a deep copy.
//!
//! The simulator is used by integration tests to check the key end-to-end
//! property of the compiler: running the distributed program over the
//! physical topology produces the same output packets and the same aggregate
//! state as running the original one-big-switch program.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use snap_lang::{EvalError, Field, Packet, StateVar, Store, Value};
use snap_xfdd::{eval_test, Action, Node, NodeId, Xfdd};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use snap_topology::{NodeId as SwitchId, PortId, Topology};

/// Per-switch configuration produced by rule generation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SwitchConfig {
    /// The switch this configuration belongs to.
    pub node: SwitchId,
    /// The state variables stored on this switch.
    pub local_vars: BTreeSet<StateVar>,
    /// The program. Every switch carries the full (shared, interned) diagram
    /// but only executes the parts whose state it owns; the SNAP header
    /// records where processing stopped.
    pub program: Xfdd,
    /// OBS external ports attached to this switch.
    pub ports: BTreeSet<PortId>,
}

/// Errors surfaced by the simulator.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The ingress port is not attached to any switch.
    UnknownPort(PortId),
    /// A packet was forwarded more than the hop budget allows (routing loop
    /// or unreachable state/egress switch).
    HopBudgetExceeded,
    /// The program's outport is not an external port of the topology.
    BadOutPort(Value),
    /// Evaluation failed (missing field, bad increment, ...).
    Eval(EvalError),
}

impl From<EvalError> for SimError {
    fn from(e: EvalError) -> Self {
        SimError::Eval(e)
    }
}

/// Processing status carried in the SNAP header of an in-flight packet.
#[derive(Clone, Debug, PartialEq)]
enum Progress {
    /// Still walking the diagram; the interned id of the next node to
    /// process (the §4.5 packet tag).
    AtNode(NodeId),
    /// Executing a specific action sequence of a leaf, from an action offset.
    InLeaf {
        node: NodeId,
        seq: usize,
        offset: usize,
    },
    /// Processing finished; the packet just needs to reach its egress.
    Done,
}

/// An in-flight packet: payload plus SNAP header.
#[derive(Clone, Debug)]
struct InFlight {
    pkt: Packet,
    inport: PortId,
    at: SwitchId,
    progress: Progress,
    hops: usize,
}

/// The distributed network: topology, per-switch configurations and
/// per-switch state tables.
pub struct Network {
    topology: Topology,
    configs: BTreeMap<SwitchId, SwitchConfig>,
    /// The shared program's root node (identical across configs, which all
    /// hold handles on the same interned pool).
    root: Option<NodeId>,
    /// Which switch holds each state variable (derived from the configs).
    placement: BTreeMap<StateVar, SwitchId>,
    /// Per-switch state, behind a lock so statistics can be gathered from
    /// other threads in long-running simulations.
    stores: BTreeMap<SwitchId, Arc<Mutex<Store>>>,
    /// Maximum number of hops a packet may take before the simulator reports
    /// a routing loop.
    pub hop_budget: usize,
    /// Configuration epoch: 0 at construction, bumped by every
    /// [`Network::swap_configs`].
    epoch: u64,
}

/// Per-switch configurations, indexed and validated: every config must hold
/// a handle on the *same* interned pool and root, since the packet tag of
/// one switch dereferences another switch's arena.
struct IndexedConfigs {
    map: BTreeMap<SwitchId, SwitchConfig>,
    root: Option<NodeId>,
    placement: BTreeMap<StateVar, SwitchId>,
}

fn index_configs(configs: Vec<SwitchConfig>) -> IndexedConfigs {
    let mut placement = BTreeMap::new();
    let mut map = BTreeMap::new();
    let mut root = None;
    let mut pool: Option<*const snap_xfdd::Pool> = None;
    for c in configs {
        // NodeIds are only meaningful within their own arena: every
        // config must hold a handle on the same interned pool (rule
        // generation guarantees this), otherwise the packet tag of one
        // switch would dereference another switch's arena.
        let c_pool = c.program.pool() as *const _;
        assert!(
            *pool.get_or_insert(c_pool) == c_pool,
            "switch {:?} carries a program from a different xFDD pool",
            c.node
        );
        assert!(
            *root.get_or_insert(c.program.root()) == c.program.root(),
            "switch {:?} carries a program with a different root",
            c.node
        );
        for v in &c.local_vars {
            placement.insert(v.clone(), c.node);
        }
        map.insert(c.node, c);
    }
    IndexedConfigs {
        map,
        root,
        placement,
    }
}

impl Network {
    /// Build a network from per-switch configurations.
    pub fn new(topology: Topology, configs: Vec<SwitchConfig>) -> Self {
        let indexed = index_configs(configs);
        let stores = indexed
            .map
            .keys()
            .map(|&n| (n, Arc::new(Mutex::new(Store::new()))))
            .collect();
        Network {
            topology,
            configs: indexed.map,
            root: indexed.root,
            placement: indexed.placement,
            stores,
            hop_budget: 256,
            epoch: 0,
        }
    }

    /// The current configuration epoch (how many times [`Self::swap_configs`]
    /// replaced the running program).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Atomically replace every switch's configuration with a freshly
    /// compiled set — the controller's recompile-and-push step — without
    /// rebuilding the network or losing switch state. Variables whose owner
    /// moved have their state tables migrated to the new owner; variables no
    /// longer placed anywhere have their tables *dropped*, so re-placing the
    /// same name later deterministically starts fresh wherever it lands
    /// (rather than resurrecting stale state only when the optimizer happens
    /// to pick the old switch). Returns the new epoch.
    ///
    /// The new configs may come from a different xFDD pool than the old ones
    /// (they must still all share one pool among themselves): the swap
    /// replaces program, root and placement together, so no packet ever
    /// resolves an old node id against a new arena.
    pub fn swap_configs(&mut self, configs: Vec<SwitchConfig>) -> u64 {
        let indexed = index_configs(configs);
        // Migrate state owned by a different switch under the new placement,
        // and drop tables of variables the new program no longer places.
        for (var, &old_owner) in &self.placement {
            let take = |stores: &BTreeMap<SwitchId, Arc<Mutex<Store>>>| {
                stores
                    .get(&old_owner)
                    .and_then(|s| s.lock().remove_table(var))
            };
            match indexed.placement.get(var) {
                Some(&new_owner) if new_owner != old_owner => {
                    if let Some(table) = take(&self.stores) {
                        self.stores
                            .entry(new_owner)
                            .or_insert_with(|| Arc::new(Mutex::new(Store::new())))
                            .lock()
                            .insert_table(var.clone(), table);
                    }
                }
                Some(_) => {} // same owner: table stays put
                None => {
                    take(&self.stores);
                }
            }
        }
        for &n in indexed.map.keys() {
            self.stores
                .entry(n)
                .or_insert_with(|| Arc::new(Mutex::new(Store::new())));
        }
        self.configs = indexed.map;
        self.root = indexed.root;
        self.placement = indexed.placement;
        self.epoch += 1;
        self.epoch
    }

    /// The switch a state variable lives on.
    pub fn owner(&self, var: &StateVar) -> Option<SwitchId> {
        self.placement.get(var).copied()
    }

    /// Merge the per-switch state tables into a single OBS-level store
    /// (each variable lives on exactly one switch, so this is a disjoint
    /// union).
    pub fn aggregate_store(&self) -> Store {
        let mut out = Store::new();
        for (node, store) in &self.stores {
            let guard = store.lock();
            for var in guard.variables() {
                if self
                    .configs
                    .get(node)
                    .map(|c| c.local_vars.contains(var))
                    .unwrap_or(false)
                {
                    if let Some(table) = guard.table(var) {
                        out.insert_table(var.clone(), table.clone());
                    }
                }
            }
        }
        out
    }

    /// Inject a packet at an OBS external port and run it to completion.
    /// Returns the set of `(egress port, packet)` pairs that leave the
    /// network.
    pub fn inject(
        &mut self,
        port: PortId,
        packet: &Packet,
    ) -> Result<BTreeSet<(PortId, Packet)>, SimError> {
        let ingress = self
            .topology
            .port_switch(port)
            .ok_or(SimError::UnknownPort(port))?;
        let root = match self.root {
            Some(r) => r,
            None => return Ok(BTreeSet::new()), // no programs installed
        };
        let mut outputs = BTreeSet::new();
        let mut work = vec![InFlight {
            pkt: packet.clone(),
            inport: port,
            at: ingress,
            progress: Progress::AtNode(root),
            hops: 0,
        }];

        while let Some(mut flight) = work.pop() {
            if flight.hops > self.hop_budget {
                return Err(SimError::HopBudgetExceeded);
            }
            let config = match self.configs.get(&flight.at) {
                Some(c) => c.clone(),
                None => {
                    // A switch without a config only forwards.
                    self.forward(&mut flight)?;
                    work.push(flight);
                    continue;
                }
            };
            match self.process_at_switch(&config, &mut flight)? {
                StepOutcome::Emit(pkt, outport) => {
                    // Deliver: if the egress port is attached to this switch
                    // the packet leaves; otherwise keep forwarding.
                    if config.ports.contains(&outport) {
                        let mut clean = pkt;
                        strip_snap_header(&mut clean);
                        outputs.insert((outport, clean));
                    } else {
                        flight.pkt = pkt;
                        flight.progress = Progress::Done;
                        self.forward_towards_port(&mut flight, outport)?;
                        work.push(flight);
                    }
                }
                StepOutcome::Dropped => {}
                StepOutcome::NeedState(var) => {
                    // Forward one hop towards the owner of the variable.
                    let owner = self.owner(&var).ok_or_else(|| {
                        SimError::Eval(EvalError::MissingField(Field::Custom(format!(
                            "no placement for state variable {var}"
                        ))))
                    })?;
                    self.forward_towards_node(&mut flight, owner)?;
                    work.push(flight);
                }
                StepOutcome::Fork(children) => {
                    for child in children {
                        work.push(child);
                    }
                }
            }
        }
        Ok(outputs)
    }

    /// Inject a sequence of packets (a trace) and collect every egress event.
    pub fn inject_trace(
        &mut self,
        trace: &[(PortId, Packet)],
    ) -> Result<Vec<BTreeSet<(PortId, Packet)>>, SimError> {
        trace
            .iter()
            .map(|(port, pkt)| self.inject(*port, pkt))
            .collect()
    }

    fn process_at_switch(
        &self,
        config: &SwitchConfig,
        flight: &mut InFlight,
    ) -> Result<StepOutcome, SimError> {
        let store_arc = self.stores.get(&config.node).cloned();
        let program = &config.program;
        loop {
            match flight.progress.clone() {
                Progress::Done => {
                    // Processing already finished elsewhere; figure the
                    // outport out of the packet and keep delivering.
                    let outport = read_outport(&flight.pkt)?;
                    return Ok(StepOutcome::Emit(flight.pkt.clone(), outport));
                }
                Progress::AtNode(idx) => match program.node(idx) {
                    Node::Branch { test, tru, fls } => {
                        let passed = match test.state_var() {
                            Some(var) if !config.local_vars.contains(var) => {
                                return Ok(StepOutcome::NeedState(var.clone()))
                            }
                            _ => {
                                let store = store_arc
                                    .as_ref()
                                    .map(|s| s.lock().clone())
                                    .unwrap_or_default();
                                eval_test(test, &flight.pkt, &store)?
                            }
                        };
                        flight.progress = Progress::AtNode(if passed { *tru } else { *fls });
                    }
                    Node::Leaf(leaf) => {
                        if leaf.0.is_empty() {
                            return Ok(StepOutcome::Dropped);
                        }
                        if leaf.0.len() == 1 {
                            flight.progress = Progress::InLeaf {
                                node: idx,
                                seq: 0,
                                offset: 0,
                            };
                        } else {
                            // Fork one in-flight copy per parallel sequence.
                            let children = (0..leaf.0.len())
                                .map(|s| InFlight {
                                    pkt: flight.pkt.clone(),
                                    inport: flight.inport,
                                    at: flight.at,
                                    progress: Progress::InLeaf {
                                        node: idx,
                                        seq: s,
                                        offset: 0,
                                    },
                                    hops: flight.hops,
                                })
                                .collect();
                            return Ok(StepOutcome::Fork(children));
                        }
                    }
                },
                Progress::InLeaf { node, seq, offset } => {
                    let leaf = match program.node(node) {
                        Node::Leaf(l) => l,
                        _ => unreachable!("InLeaf progress always points at a leaf"),
                    };
                    let sequence: Vec<&Action> = leaf
                        .0
                        .iter()
                        .nth(seq)
                        .map(|s| s.actions.iter().collect())
                        .unwrap_or_default();
                    let drops = leaf.0.iter().nth(seq).map(|s| s.drops).unwrap_or(true);
                    let mut off = offset;
                    while off < sequence.len() {
                        let action = sequence[off];
                        match action {
                            Action::Modify(f, v) => {
                                flight.pkt.set(f.clone(), v.clone());
                            }
                            Action::StateSet { var, .. }
                            | Action::StateIncr { var, .. }
                            | Action::StateDecr { var, .. } => {
                                if !config.local_vars.contains(var) {
                                    flight.progress = Progress::InLeaf {
                                        node,
                                        seq,
                                        offset: off,
                                    };
                                    return Ok(StepOutcome::NeedState(var.clone()));
                                }
                                let store =
                                    store_arc.as_ref().expect("switch with state has a store");
                                let mut guard = store.lock();
                                apply_state_action(action, &flight.pkt, &mut guard)?;
                            }
                        }
                        off += 1;
                    }
                    if drops {
                        return Ok(StepOutcome::Dropped);
                    }
                    let outport = read_outport(&flight.pkt)?;
                    return Ok(StepOutcome::Emit(flight.pkt.clone(), outport));
                }
            }
        }
    }

    fn forward(&self, flight: &mut InFlight) -> Result<(), SimError> {
        // A config-less switch should not normally be reached; forward toward
        // the packet's egress if known, otherwise report a loop.
        let outport = read_outport(&flight.pkt)?;
        self.forward_towards_port(flight, outport)
    }

    fn forward_towards_port(&self, flight: &mut InFlight, port: PortId) -> Result<(), SimError> {
        let target = self
            .topology
            .port_switch(port)
            .ok_or(SimError::BadOutPort(Value::Int(port.0 as i64)))?;
        self.forward_towards_node(flight, target)
    }

    fn forward_towards_node(
        &self,
        flight: &mut InFlight,
        target: SwitchId,
    ) -> Result<(), SimError> {
        if flight.at == target {
            return Ok(());
        }
        let path = self
            .topology
            .shortest_path(flight.at, target)
            .ok_or(SimError::HopBudgetExceeded)?;
        flight.at = path[1];
        flight.hops += 1;
        Ok(())
    }
}

enum StepOutcome {
    Emit(Packet, PortId),
    Dropped,
    NeedState(StateVar),
    Fork(Vec<InFlight>),
}

fn read_outport(pkt: &Packet) -> Result<PortId, SimError> {
    match pkt.get(&Field::OutPort) {
        Some(Value::Int(p)) if *p >= 0 => Ok(PortId(*p as usize)),
        Some(other) => Err(SimError::BadOutPort(other.clone())),
        None => Err(SimError::BadOutPort(Value::Int(-1))),
    }
}

fn apply_state_action(action: &Action, pkt: &Packet, store: &mut Store) -> Result<(), EvalError> {
    match action {
        Action::Modify(_, _) => Ok(()),
        Action::StateSet { var, index, value } => {
            let idx = snap_lang::eval_index(index, pkt)?;
            let val = snap_lang::eval_expr(value, pkt)?;
            store.set(var, idx, val);
            Ok(())
        }
        Action::StateIncr { var, index } | Action::StateDecr { var, index } => {
            let delta = if matches!(action, Action::StateIncr { .. }) {
                1
            } else {
                -1
            };
            let idx = snap_lang::eval_index(index, pkt)?;
            let cur = store.get(var, &idx);
            let next = cur.as_int().ok_or(EvalError::NotAnInteger {
                var: var.clone(),
                value: cur.clone(),
            })?;
            store.set(var, idx, Value::Int(next + delta));
            Ok(())
        }
    }
}

fn strip_snap_header(pkt: &mut Packet) {
    // The simulator keeps its bookkeeping outside the packet, so the only
    // header field added by the pipeline itself is the OBS outport; keep it,
    // since the OBS program set it explicitly. Custom `snap.*` fields, if a
    // rule generator added any, are removed here.
    let custom: Vec<Field> = pkt
        .iter()
        .filter_map(|(f, _)| match f {
            Field::Custom(name) if name.starts_with("snap.") => Some(f.clone()),
            _ => None,
        })
        .collect();
    for f in custom {
        pkt.remove(&f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_lang::builder::*;
    use snap_lang::Policy;
    use snap_topology::generators::campus;

    /// Build a network for `policy` on the campus topology with all state on
    /// the named switch. All configs share one interned program.
    fn campus_network(policy: &Policy, state_switch: &str) -> Network {
        let topo = campus();
        let program = snap_xfdd::compile(policy).unwrap();
        let owner = topo.node_by_name(state_switch).unwrap();
        let all_vars = policy.state_vars();
        let configs = topo
            .nodes()
            .map(|n| SwitchConfig {
                node: n,
                local_vars: if n == owner {
                    all_vars.clone()
                } else {
                    BTreeSet::new()
                },
                program: program.clone(),
                ports: topo
                    .external_ports()
                    .filter(|(_, sw)| *sw == n)
                    .map(|(p, _)| p)
                    .collect(),
            })
            .collect();
        Network::new(topo, configs)
    }

    fn assign_egress_stateless() -> Policy {
        // Forward to port 6 when dstip is in 10.0.6.0/24, else to port 1.
        ite(
            test_prefix(Field::DstIp, 10, 0, 6, 0, 24),
            modify(Field::OutPort, Value::Int(6)),
            modify(Field::OutPort, Value::Int(1)),
        )
    }

    #[test]
    fn stateless_forwarding_reaches_the_right_port() {
        let policy = assign_egress_stateless();
        let mut net = campus_network(&policy, "D4");
        let pkt = Packet::new()
            .with(Field::SrcIp, Value::ip(10, 0, 1, 9))
            .with(Field::DstIp, Value::ip(10, 0, 6, 9));
        let out = net.inject(PortId(1), &pkt).unwrap();
        assert_eq!(out.len(), 1);
        let (port, delivered) = out.into_iter().next().unwrap();
        assert_eq!(port, PortId(6));
        assert_eq!(delivered.get(&Field::OutPort), Some(&Value::Int(6)));
    }

    #[test]
    fn stateful_counting_happens_on_the_state_switch() {
        // Count per inport, then forward to port 6.
        let policy = state_incr("count", vec![field(Field::InPort)])
            .seq(modify(Field::OutPort, Value::Int(6)));
        let mut net = campus_network(&policy, "C6");
        let pkt = Packet::new()
            .with(Field::InPort, 1)
            .with(Field::DstIp, Value::ip(10, 0, 6, 1));
        for _ in 0..3 {
            let out = net.inject(PortId(1), &pkt).unwrap();
            assert_eq!(out.len(), 1);
        }
        let store = net.aggregate_store();
        assert_eq!(store.get(&"count".into(), &[Value::Int(1)]), Value::Int(3));
        // The state lives only on C6.
        let owner = net.owner(&"count".into()).unwrap();
        assert_eq!(net.topology.node_name(owner), "C6");
    }

    #[test]
    fn distributed_execution_matches_obs_eval() {
        // A stateful firewall-ish program plus egress assignment, compared
        // against the one-big-switch semantics packet by packet.
        let policy = ite(
            test_prefix(Field::SrcIp, 10, 0, 6, 0, 24),
            state_set(
                "established",
                vec![field(Field::SrcIp), field(Field::DstIp)],
                Value::Bool(true),
            ),
            ite(
                state_truthy(
                    "established",
                    vec![field(Field::DstIp), field(Field::SrcIp)],
                ),
                id(),
                drop(),
            ),
        )
        .seq(ite(
            test_prefix(Field::DstIp, 10, 0, 6, 0, 24),
            modify(Field::OutPort, Value::Int(6)),
            modify(Field::OutPort, Value::Int(1)),
        ));

        let mut net = campus_network(&policy, "D4");
        let inside = Value::ip(10, 0, 6, 10);
        let outside = Value::ip(10, 0, 1, 20);
        let trace = vec![
            // Outside host tries to reach inside: dropped (no established state).
            (
                PortId(1),
                Packet::new()
                    .with(Field::SrcIp, outside.clone())
                    .with(Field::DstIp, inside.clone()),
            ),
            // Inside host opens a connection outward.
            (
                PortId(6),
                Packet::new()
                    .with(Field::SrcIp, inside.clone())
                    .with(Field::DstIp, outside.clone()),
            ),
            // Now the reverse direction is allowed.
            (
                PortId(1),
                Packet::new()
                    .with(Field::SrcIp, outside)
                    .with(Field::DstIp, inside),
            ),
        ];

        // Reference: one-big-switch evaluation.
        let mut obs_store = Store::new();
        let mut obs_outputs = Vec::new();
        for (_, pkt) in &trace {
            let r = snap_lang::eval(&policy, &obs_store, pkt).unwrap();
            obs_store = r.store;
            obs_outputs.push(r.packets);
        }

        let dist_outputs = net.inject_trace(&trace).unwrap();
        assert_eq!(dist_outputs.len(), obs_outputs.len());
        for (dist, obs) in dist_outputs.iter().zip(obs_outputs.iter()) {
            let dist_pkts: BTreeSet<Packet> = dist.iter().map(|(_, p)| p.clone()).collect();
            assert_eq!(&dist_pkts, obs);
        }
        assert_eq!(net.aggregate_store(), obs_store);
    }

    #[test]
    fn unknown_port_is_reported() {
        let policy = assign_egress_stateless();
        let mut net = campus_network(&policy, "D4");
        let err = net.inject(PortId(99), &Packet::new()).unwrap_err();
        assert_eq!(err, SimError::UnknownPort(PortId(99)));
    }

    #[test]
    fn parallel_leaf_forks_and_both_copies_are_delivered() {
        // Multicast to ports 1 and 6 simultaneously.
        let policy =
            modify(Field::OutPort, Value::Int(1)).par(modify(Field::OutPort, Value::Int(6)));
        let mut net = campus_network(&policy, "D4");
        let out = net
            .inject(
                PortId(2),
                &Packet::new().with(Field::SrcIp, Value::ip(1, 1, 1, 1)),
            )
            .unwrap();
        let ports: BTreeSet<PortId> = out.iter().map(|(p, _)| *p).collect();
        assert_eq!(ports, BTreeSet::from([PortId(1), PortId(6)]));
    }

    #[test]
    fn packet_with_no_outport_is_an_error() {
        let policy = Policy::id();
        let mut net = campus_network(&policy, "D4");
        let err = net.inject(PortId(1), &Packet::new()).unwrap_err();
        assert!(matches!(err, SimError::BadOutPort(_)));
    }

    /// The configs a `campus_network` for `policy` would install, without
    /// building a new network.
    fn campus_configs(policy: &Policy, state_switch: &str) -> Vec<SwitchConfig> {
        let topo = campus();
        let program = snap_xfdd::compile(policy).unwrap();
        let owner = topo.node_by_name(state_switch).unwrap();
        let all_vars = policy.state_vars();
        topo.nodes()
            .map(|n| SwitchConfig {
                node: n,
                local_vars: if n == owner {
                    all_vars.clone()
                } else {
                    BTreeSet::new()
                },
                program: program.clone(),
                ports: topo
                    .external_ports()
                    .filter(|(_, sw)| *sw == n)
                    .map(|(p, _)| p)
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn swap_configs_bumps_the_epoch_and_replaces_the_program() {
        let count_then_6 = state_incr("count", vec![field(Field::InPort)])
            .seq(modify(Field::OutPort, Value::Int(6)));
        let mut net = campus_network(&count_then_6, "C6");
        assert_eq!(net.epoch(), 0);
        let pkt = Packet::new().with(Field::InPort, 1);
        net.inject(PortId(1), &pkt).unwrap();

        // Recompile with a different egress and swap it in.
        let count_then_1 = state_incr("count", vec![field(Field::InPort)])
            .seq(modify(Field::OutPort, Value::Int(1)));
        let epoch = net.swap_configs(campus_configs(&count_then_1, "C6"));
        assert_eq!(epoch, 1);
        assert_eq!(net.epoch(), 1);

        // The new program routes to port 1, and the old counter state
        // survived the swap.
        let out = net.inject(PortId(2), &pkt).unwrap();
        assert_eq!(out.iter().next().unwrap().0, PortId(1));
        assert_eq!(
            net.aggregate_store().get(&"count".into(), &[Value::Int(1)]),
            Value::Int(2)
        );
    }

    #[test]
    fn unplaced_variables_are_dropped_not_resurrected() {
        let counting = state_incr("count", vec![field(Field::InPort)])
            .seq(modify(Field::OutPort, Value::Int(6)));
        let stateless = assign_egress_stateless();
        let mut net = campus_network(&counting, "C6");
        let pkt = Packet::new().with(Field::InPort, 1);
        for _ in 0..3 {
            net.inject(PortId(1), &pkt).unwrap();
        }

        // Swap to a program that no longer places "count": its table is
        // dropped, not stranded on C6.
        net.swap_configs(campus_configs(&stateless, "C6"));
        assert_eq!(net.owner(&"count".into()), None);

        // Re-placing the variable — on the *same* switch as before — starts
        // fresh rather than resurrecting the old table.
        net.swap_configs(campus_configs(&counting, "C6"));
        net.inject(PortId(1), &pkt).unwrap();
        assert_eq!(
            net.aggregate_store().get(&"count".into(), &[Value::Int(1)]),
            Value::Int(1)
        );
    }

    #[test]
    fn swap_configs_migrates_state_to_the_new_owner() {
        let policy = state_incr("count", vec![field(Field::InPort)])
            .seq(modify(Field::OutPort, Value::Int(6)));
        let mut net = campus_network(&policy, "C6");
        let pkt = Packet::new().with(Field::InPort, 1);
        for _ in 0..3 {
            net.inject(PortId(1), &pkt).unwrap();
        }
        assert_eq!(
            net.topology.node_name(net.owner(&"count".into()).unwrap()),
            "C6"
        );

        // Same program, state re-placed on D4: the table must move with it.
        net.swap_configs(campus_configs(&policy, "D4"));
        assert_eq!(
            net.topology.node_name(net.owner(&"count".into()).unwrap()),
            "D4"
        );
        assert_eq!(
            net.aggregate_store().get(&"count".into(), &[Value::Int(1)]),
            Value::Int(3)
        );
        // And the counter keeps counting on the new owner.
        net.inject(PortId(1), &pkt).unwrap();
        assert_eq!(
            net.aggregate_store().get(&"count".into(), &[Value::Int(1)]),
            Value::Int(4)
        );
    }
}
