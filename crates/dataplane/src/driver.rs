//! The one packet driver shared by every plane of the simulator.
//!
//! SNAP's premise is a single program abstraction executed uniformly across
//! the network, and the repo used to mirror that with two divergent copies
//! of the per-packet dispatch loop — one in `Network`, one in the
//! distributed `DistNetwork`. This module is the single remaining loop: the
//! Emit/Dropped/NeedState/Fork dispatch, both spin-in-place guards, the hop
//! budget and the forwarding logic live here and nowhere else. What differs
//! between planes is expressed through two small traits:
//!
//! * [`ViewResolver`] — how a hop resolves its executable view. The
//!   in-process `Network` answers from one RCU [`crate::ConfigSnapshot`]
//!   (every hop sees the same epoch); the distributed plane answers from
//!   each agent's epoch-history ring (`view_for(epoch)`), serving staged
//!   views mid-commit. The resolver also hands out the per-switch store
//!   shard — state is epoch-independent in both planes.
//! * [`EgressSink`] — where a delivered packet lands: a flat per-packet
//!   result set, or bounded per-port FIFO queues with backpressure
//!   accounting ([`crate::EgressQueues`]).
//!
//! On top of the unified loop the driver executes **batched**: in-flight
//! packets are grouped by their current switch and each group is drained
//! under a single [`StoreLease`], so a store lock is taken once per
//! (switch, batch-group) instead of once per packet visit — the cheapest
//! remaining throughput lever, in the spirit of the wire-speed stateful
//! stages of OPP and the state-access bottleneck observed by State-Compute
//! Replication. Per-packet injection is simply a batch of one.
//!
//! Consistency note: within a batch, packets interleave at switch
//! granularity, so the *relative order* of state writes from different
//! packets of one batch is unspecified (exactly as it already was across
//! worker threads); each packet still executes exactly one configuration
//! end to end, and per-packet semantics are unchanged.

use crate::exec::{
    misplaced_state_error, missing_placement_error, process_at_switch, read_outport,
    strip_snap_header, InFlight, NextHops, Progress, SimError, StepOutcome, StoreLease,
};
use parking_lot::Mutex;
use snap_lang::{Packet, StateVar, Store, Value};
use snap_topology::{NodeId as SwitchId, PortId, Topology};
use snap_xfdd::{FlatId, FlatProgram};
use std::collections::{BTreeSet, VecDeque};

/// One switch's executable view under one epoch, as the driver consumes it:
/// the program to walk, the state the switch owns, the external ports it
/// serves and the global variable placement for forwarding towards state.
pub trait HopView {
    /// The flattened program this view executes.
    fn flat(&self) -> &FlatProgram;
    /// State variables the switch owns under this view.
    fn local_vars(&self) -> &BTreeSet<StateVar>;
    /// Does this view serve `port` as a local external port?
    fn serves_port(&self, port: PortId) -> bool;
    /// The switch a state variable lives on under this view's placement.
    fn owner(&self, var: &StateVar) -> Option<SwitchId>;
}

/// How a plane resolves executable views: the seam between the shared
/// driver and a configuration source.
///
/// Implementations: the RCU snapshot of [`crate::Network`] (one immutable
/// epoch for the whole run) and the per-agent epoch-history lookup of the
/// distributed plane (each hop resolves the packet's stamped epoch).
pub trait ViewResolver {
    /// The view a hop executes, borrowed from the resolver.
    type View<'v>: HopView
    where
        Self: 'v;
    /// The plane's error type; every shared [`SimError`] must embed into it.
    type Error: From<SimError>;

    /// Stamp a packet at its ingress switch: the epoch it will execute under
    /// at every hop and the program root to start from. `Ok(None)` means
    /// nothing is installed — the packet vanishes with empty egress.
    fn ingress(&self, switch: SwitchId) -> Result<Option<(u64, FlatId)>, Self::Error>;

    /// Resolve the view of `switch` for a stamped `epoch`. `Ok(None)` means
    /// the switch has no configuration and only forwards.
    fn resolve(&self, switch: SwitchId, epoch: u64) -> Result<Option<Self::View<'_>>, Self::Error>;

    /// The switch's state shard. Epoch-independent in every plane — state
    /// survives reconfiguration — which is what lets the driver lease it
    /// once per (switch, batch-group).
    fn store(&self, switch: SwitchId) -> Option<&Mutex<Store>>;
}

/// Where delivered packets land. `origin` is the index of the packet within
/// the driven batch, so sinks can keep per-packet results.
pub trait EgressSink {
    /// Deliver a cleaned packet leaving the network at `port` (served by
    /// switch `at`) under `epoch`.
    fn deliver(&mut self, origin: usize, at: SwitchId, port: PortId, pkt: Packet, epoch: u64);
}

/// Per-packet driver results for one batch: the epoch each packet executed
/// under (`None` when nothing was installed), or the packet's error. Egress
/// is delivered through the [`EgressSink`], keyed by the same index.
pub type BatchResults<E> = Vec<Result<Option<u64>, E>>;

/// An in-flight packet plus the driver's batch bookkeeping: which batch
/// packet it belongs to and the epoch it was stamped with at ingress.
struct Tagged {
    flight: InFlight,
    origin: usize,
    epoch: u64,
}

/// The generic packet driver: topology, precomputed next hops and the hop
/// budget — everything the dispatch loop needs that is not view resolution
/// or egress delivery. Both planes build one per injection call; it borrows
/// and costs nothing to construct.
pub struct Driver<'a> {
    topology: &'a Topology,
    next_hops: &'a NextHops,
    hop_budget: usize,
}

impl<'a> Driver<'a> {
    /// A driver over a topology with a precomputed next-hop table and a hop
    /// budget.
    pub fn new(topology: &'a Topology, next_hops: &'a NextHops, hop_budget: usize) -> Driver<'a> {
        Driver {
            topology,
            next_hops,
            hop_budget,
        }
    }

    /// Drive a batch of packets to completion — the single dispatch loop of
    /// the workspace.
    ///
    /// Execution is grouped by switch: all in-flight packets currently at
    /// the same switch are drained together under one [`StoreLease`] (one
    /// store-lock acquisition per group) with each distinct epoch's view
    /// resolved once for the group. A packet that fails loses its remaining
    /// in-flight copies, and never affects the rest of the batch; state
    /// side effects that already happened stay, as they always did. The
    /// sink may already have seen some of a failed packet's deliveries:
    /// set-collecting adapters discard them along with the error, while
    /// queue-delivering sinks cannot retract what was already enqueued (the
    /// distributed plane's historical semantics — an egress queue is a
    /// wire, not a buffer the driver owns).
    ///
    /// Batch entries may be owned packets or references — a batch of one
    /// borrowed packet clones it exactly once, into its in-flight copy.
    pub fn run_batch<R, S, P>(
        &self,
        resolver: &R,
        sink: &mut S,
        batch: &[(PortId, P)],
    ) -> BatchResults<R::Error>
    where
        R: ViewResolver,
        S: EgressSink,
        P: std::borrow::Borrow<Packet>,
    {
        let mut results: BatchResults<R::Error> = batch.iter().map(|_| Ok(None)).collect();
        let mut pending: Vec<Tagged> = Vec::with_capacity(batch.len());
        for (origin, (port, packet)) in batch.iter().enumerate() {
            let Some(ingress) = self.topology.port_switch(*port) else {
                results[origin] = Err(SimError::UnknownPort(*port).into());
                continue;
            };
            match resolver.ingress(ingress) {
                Err(e) => results[origin] = Err(e),
                Ok(None) => {} // nothing installed: empty egress
                Ok(Some((epoch, root))) => {
                    results[origin] = Ok(Some(epoch));
                    pending.push(Tagged {
                        flight: InFlight::ingress(packet.borrow().clone(), *port, ingress, root),
                        origin,
                        epoch,
                    });
                }
            }
        }

        // Wave scheduling: each wave stable-sorts the in-flight packets by
        // their current switch (preserving arrival order within a switch)
        // and processes each contiguous run as one group — one store lease
        // and one view resolution per (switch, epoch) per wave. Flights
        // forwarded during a wave join the next one. The buffers persist
        // across waves, so steady state allocates nothing.
        let mut group: VecDeque<Tagged> = VecDeque::new();
        let mut next: Vec<Tagged> = Vec::new();
        let mut views: Vec<(u64, Option<R::View<'_>>)> = Vec::new();
        while !pending.is_empty() {
            pending.sort_by_key(|tagged| tagged.flight.at);
            let mut drain = pending.drain(..).peekable();
            while let Some(first) = drain.next() {
                let switch = first.flight.at;
                group.push_back(first);
                while drain
                    .peek()
                    .is_some_and(|tagged| tagged.flight.at == switch)
                {
                    group.push_back(drain.next().expect("peeked"));
                }
                self.run_group(
                    resolver,
                    sink,
                    switch,
                    &mut group,
                    &mut views,
                    &mut next,
                    &mut results,
                );
            }
            drop(drain);
            std::mem::swap(&mut pending, &mut next);
        }
        results
    }

    /// Drain one switch's group: every flight currently at `switch`, plus
    /// any copies forked while draining, executes under a single
    /// [`StoreLease`] with each distinct epoch's view resolved once.
    /// Forwarded flights land in `next` (the following wave); failures land
    /// in `results`.
    #[allow(clippy::too_many_arguments)]
    fn run_group<'r, R: ViewResolver, S: EgressSink>(
        &self,
        resolver: &'r R,
        sink: &mut S,
        switch: SwitchId,
        group: &mut VecDeque<Tagged>,
        views: &mut Vec<(u64, Option<R::View<'r>>)>,
        next: &mut Vec<Tagged>,
        results: &mut BatchResults<R::Error>,
    ) {
        let mut lease = StoreLease::new(resolver.store(switch));
        views.clear();
        while let Some(mut tagged) = group.pop_front() {
            if results[tagged.origin].is_err() {
                continue; // a sibling copy already failed this packet
            }
            if tagged.flight.hops > self.hop_budget {
                results[tagged.origin] = Err(SimError::HopBudgetExceeded.into());
                continue;
            }
            let view_idx = match views.iter().position(|(e, _)| *e == tagged.epoch) {
                Some(idx) => idx,
                None => match resolver.resolve(switch, tagged.epoch) {
                    Ok(view) => {
                        views.push((tagged.epoch, view));
                        views.len() - 1
                    }
                    Err(e) => {
                        results[tagged.origin] = Err(e);
                        continue;
                    }
                },
            };
            let Some(view) = views[view_idx].1.as_ref() else {
                // A switch without a configuration only forwards,
                // towards the packet's egress port if it has one.
                match self.forward_unconfigured(&mut tagged.flight) {
                    Ok(()) => next.push(tagged),
                    Err(e) => results[tagged.origin] = Err(e.into()),
                }
                continue;
            };
            let step = match process_at_switch(
                view.local_vars(),
                view.flat(),
                &mut lease,
                &mut tagged.flight,
            ) {
                Ok(step) => step,
                Err(e) => {
                    results[tagged.origin] = Err(e.into());
                    continue;
                }
            };
            match step {
                StepOutcome::Emit(pkt, outport) => {
                    if view.serves_port(outport) {
                        let mut clean = pkt;
                        strip_snap_header(&mut clean);
                        sink.deliver(tagged.origin, switch, outport, clean, tagged.epoch);
                    } else {
                        tagged.flight.pkt = pkt;
                        tagged.flight.progress = Progress::Done;
                        match self.forward_towards_port(&mut tagged.flight, outport) {
                            Ok(()) => next.push(tagged),
                            Err(e) => results[tagged.origin] = Err(e.into()),
                        }
                    }
                }
                StepOutcome::Dropped => {}
                StepOutcome::NeedState(var) => {
                    let Some(owner) = view.owner(&var) else {
                        results[tagged.origin] = Err(missing_placement_error(&var).into());
                        continue;
                    };
                    if owner == switch {
                        // The view's placement and local_vars disagree;
                        // forwarding "towards" the owner would spin in
                        // place forever.
                        results[tagged.origin] = Err(misplaced_state_error(&var).into());
                        continue;
                    }
                    match self.next_hops.forward_towards(&mut tagged.flight, owner) {
                        Ok(()) => next.push(tagged),
                        Err(e) => results[tagged.origin] = Err(e.into()),
                    }
                }
                StepOutcome::Fork(children) => {
                    for flight in children {
                        group.push_back(Tagged {
                            flight,
                            origin: tagged.origin,
                            epoch: tagged.epoch,
                        });
                    }
                }
            }
        }
    }

    /// Forwarding for a switch with no configuration: towards the packet's
    /// already-assigned egress port, or an error if it has none.
    fn forward_unconfigured(&self, flight: &mut InFlight) -> Result<(), SimError> {
        let outport = read_outport(&flight.pkt)?;
        self.forward_towards_port(flight, outport)
    }

    /// Advance one hop towards the switch hosting `port`, with the shared
    /// spin-in-place guard: if the port is attached to the *current* switch
    /// yet its view does not serve it (misconfiguration), forwarding
    /// "towards" it would spin forever, so the packet fails instead.
    fn forward_towards_port(&self, flight: &mut InFlight, port: PortId) -> Result<(), SimError> {
        let target = self
            .topology
            .port_switch(port)
            .ok_or(SimError::BadOutPort(Value::Int(port.0 as i64)))?;
        if target == flight.at {
            return Err(SimError::BadOutPort(Value::Int(port.0 as i64)));
        }
        self.next_hops.forward_towards(flight, target)
    }
}
