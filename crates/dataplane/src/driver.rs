//! The one packet driver shared by every plane of the simulator.
//!
//! SNAP's premise is a single program abstraction executed uniformly across
//! the network, and the repo used to mirror that with two divergent copies
//! of the per-packet dispatch loop — one in `Network`, one in the
//! distributed `DistNetwork`. This module is the single remaining loop: the
//! Emit/Dropped/NeedState/Fork dispatch, both spin-in-place guards, the hop
//! budget and the forwarding logic live here and nowhere else. What differs
//! between planes is expressed through two small traits:
//!
//! * [`ViewResolver`] — how a hop resolves its executable view. The
//!   in-process `Network` answers from one RCU [`crate::ConfigSnapshot`]
//!   (every hop sees the same epoch); the distributed plane answers from
//!   each agent's epoch-history ring (`view_for(epoch)`), serving staged
//!   views mid-commit. The resolver also hands out the per-switch store
//!   shard — state is epoch-independent in both planes.
//! * [`EgressSink`] — where a delivered packet lands: a flat per-packet
//!   result set, or bounded per-port FIFO queues with backpressure
//!   accounting ([`crate::EgressQueues`]).
//!
//! On top of the unified loop the driver executes **batched**: in-flight
//! packets are grouped by their current switch and each group is drained
//! under a single [`StoreLease`], so a store lock is taken once per
//! (switch, batch-group) instead of once per packet visit — the cheapest
//! remaining throughput lever, in the spirit of the wire-speed stateful
//! stages of OPP and the state-access bottleneck observed by State-Compute
//! Replication. Per-packet injection is simply a batch of one.
//!
//! Each group additionally runs in two phases. A lock-free **wave-prefix**
//! phase first advances the *stateless prefix* of every flight through the
//! view's table program ([`snap_xfdd::TableProgram`]): flights parked at
//! the same node step through the same per-field dispatch stage together,
//! one field column at a time, and park at their first state test or leaf.
//! Only the survivors that actually reach state then enter the **locked**
//! phase under the group's store lease — stateless drops and stateless
//! emits never contend for the lock at all (counted per instance by the
//! `driver.wave_prefix.*` counters of [`crate::PlaneTelemetry`]).
//!
//! The driver is also the telemetry plane's observation point: when a
//! plane attaches its [`crate::PlaneTelemetry`] bundle
//! ([`Driver::with_metrics`]), the loop counts ingress admissions, hop
//! visits, state writes, deliveries and drops per instance (store-lock
//! contention is counted on each switch's [`StateShards`] directly),
//! and carries the [`snap_telemetry::PacketTrace`] of a
//! 1-in-N sampled packet across its hops. Without a bundle all of it
//! compiles down to a handful of `None` checks.
//!
//! Consistency note: within a batch, packets interleave at switch
//! granularity, so the *relative order* of state writes from different
//! packets of one batch is unspecified (exactly as it already was across
//! worker threads); each packet still executes exactly one configuration
//! end to end, and per-packet semantics are unchanged.

use crate::exec::{
    misplaced_state_error, missing_placement_error, process_at_switch, read_outport,
    strip_snap_header, InFlight, NextHops, Progress, SimError, StepOutcome, StoreLease,
};
use crate::metrics::PlaneTelemetry;
use crate::shards::StateShards;
use snap_lang::{Packet, StateVar, Value};
use snap_telemetry::{HopRecord, LocalHistogram, PacketTrace};
use snap_topology::{NodeId as SwitchId, PortId, Topology};
use snap_xfdd::{FlatId, FlatProgram, TableProgram};
use std::collections::BTreeSet;

/// One switch's executable view under one epoch, as the driver consumes it:
/// the program to walk, the state the switch owns, the external ports it
/// serves and the global variable placement for forwarding towards state.
pub trait HopView {
    /// The flattened program this view executes.
    fn flat(&self) -> &FlatProgram;
    /// The table compilation of [`HopView::flat`] (same program, dispatch
    /// stages over the same flat ids). Rebuilt wherever the flat program
    /// is: at snapshot indexing in the in-process plane, in each agent's
    /// *prepare* in the distributed one — never shipped on the wire.
    fn tables(&self) -> &TableProgram;
    /// State variables the switch owns under this view.
    fn local_vars(&self) -> &BTreeSet<StateVar>;
    /// Does this view serve `port` as a local external port?
    fn serves_port(&self, port: PortId) -> bool;
    /// The switch a state variable lives on under this view's placement.
    fn owner(&self, var: &StateVar) -> Option<SwitchId>;
}

/// How a plane resolves executable views: the seam between the shared
/// driver and a configuration source.
///
/// Implementations: the RCU snapshot of [`crate::Network`] (one immutable
/// epoch for the whole run) and the per-agent epoch-history lookup of the
/// distributed plane (each hop resolves the packet's stamped epoch).
pub trait ViewResolver {
    /// The view a hop executes, borrowed from the resolver.
    type View<'v>: HopView
    where
        Self: 'v;
    /// The plane's error type; every shared [`SimError`] must embed into it.
    type Error: From<SimError>;

    /// Stamp a packet at its ingress switch: the epoch it will execute under
    /// at every hop and the program root to start from. `Ok(None)` means
    /// nothing is installed — the packet vanishes with empty egress.
    fn ingress(&self, switch: SwitchId) -> Result<Option<(u64, FlatId)>, Self::Error>;

    /// Resolve the view of `switch` for a stamped `epoch`. `Ok(None)` means
    /// the switch has no configuration and only forwards.
    fn resolve(&self, switch: SwitchId, epoch: u64) -> Result<Option<Self::View<'_>>, Self::Error>;

    /// The switch's key-range state shards. Epoch-independent in every
    /// plane — state survives reconfiguration — which is what lets the
    /// driver lease them once per (switch, batch-group).
    fn store(&self, switch: SwitchId) -> Option<&StateShards>;
}

/// Where delivered packets land. `origin` is the index of the packet within
/// the driven batch, so sinks can keep per-packet results.
pub trait EgressSink {
    /// Deliver a cleaned packet leaving the network at `port` (served by
    /// switch `at`) under `epoch`.
    fn deliver(&mut self, origin: usize, at: SwitchId, port: PortId, pkt: Packet, epoch: u64);
}

/// Per-packet driver results for one batch: the epoch each packet executed
/// under (`None` when nothing was installed), or the packet's error. Egress
/// is delivered through the [`EgressSink`], keyed by the same index.
pub type BatchResults<E> = Vec<Result<Option<u64>, E>>;

/// An in-flight packet plus the driver's batch bookkeeping: which batch
/// packet it belongs to, the epoch it was stamped with at ingress and —
/// for the 1-in-N sampled packets — the trace being built. A fork moves
/// the trace to the first child, so a trace follows exactly one flight.
struct Tagged {
    flight: InFlight,
    origin: usize,
    epoch: u64,
    trace: Option<Box<PacketTrace>>,
}

impl Default for Tagged {
    /// An inert placeholder (empty packet, finished progress) left behind
    /// when the group loop takes a flight out of its slot.
    fn default() -> Tagged {
        Tagged {
            flight: InFlight {
                pkt: Packet::new(),
                inport: PortId(0),
                at: SwitchId(0),
                progress: Progress::Done,
                hops: 0,
            },
            origin: 0,
            epoch: 0,
            trace: None,
        }
    }
}

/// Plain per-batch accumulator for the hot-path metrics: the driver
/// tallies admissions, deliveries and drops with ordinary arithmetic while
/// a batch runs and flushes into the sharded registry once at the end, so
/// the per-packet cost of telemetry is a couple of integer adds instead of
/// sharded atomic RMWs. Per-switch ingress counts are a linear-scan list —
/// a batch touches a handful of distinct ingress switches.
#[derive(Default)]
struct BatchTally {
    packets: u64,
    ingress: Vec<(usize, u64)>,
    deliveries: u64,
    delivery_hops: LocalHistogram,
    policy_drops: u64,
    switch_hops: Vec<(usize, u64)>,
    state_writes: Vec<(usize, u64)>,
    wave_prefix_packets: u64,
    wave_prefix_survivors: u64,
}

/// Add `n` under `switch` in a linear-scan per-switch tally list.
fn bump(list: &mut Vec<(usize, u64)>, switch: usize, n: u64) {
    match list.iter_mut().find(|(s, _)| *s == switch) {
        Some((_, total)) => *total += n,
        None => list.push((switch, n)),
    }
}

impl BatchTally {
    fn admit(&mut self, switch: usize) {
        self.packets += 1;
        bump(&mut self.ingress, switch, 1);
    }

    fn flush(&self, m: &PlaneTelemetry) {
        if self.packets > 0 {
            m.packets.add(self.packets);
        }
        for &(switch, n) in &self.ingress {
            m.switch_packets.add(switch, n);
        }
        if self.deliveries > 0 {
            m.deliveries.add(self.deliveries);
        }
        m.delivery_hops.merge(&self.delivery_hops);
        if self.policy_drops > 0 {
            m.policy_drops.add(self.policy_drops);
        }
        for &(switch, n) in &self.switch_hops {
            m.switch_hops.add(switch, n);
        }
        for &(switch, n) in &self.state_writes {
            m.switch_state_writes.add(switch, n);
        }
        if self.wave_prefix_packets > 0 {
            m.wave_prefix_packets.add(self.wave_prefix_packets);
            m.wave_prefix_survivors.add(self.wave_prefix_survivors);
        }
    }
}

/// Set the outcome of a traced flight's current (last) hop record. The
/// closure only runs for sampled packets, so untraced packets never
/// format a string.
fn note_outcome(tagged: &mut Tagged, outcome: impl FnOnce() -> String) {
    if let Some(trace) = tagged.trace.as_deref_mut() {
        if let Some(hop) = trace.hops.last_mut() {
            hop.outcome = outcome();
        }
    }
}

/// The §4.5 packet tag of a flight, rendered for its hop record.
fn progress_tag(progress: &Progress) -> String {
    match progress {
        Progress::AtNode(id) => format!("{id:?}"),
        Progress::InLeaf { node, seq, .. } => format!("{node:?}.{seq}"),
        Progress::Done => "done".to_string(),
    }
}

/// Recycled buffers for the wave loop: the in-flight and forwarded lists,
/// the per-switch buckets, the wave-prefix cohort work-list and a pool of
/// emptied member lists. Kept in a thread-local and shared by every batch a
/// worker thread drives, so the wave machinery stops allocating once the
/// buffers have warmed up — not once per batch.
#[derive(Default)]
struct WaveScratch {
    pending: Vec<Tagged>,
    buckets: Vec<Vec<Tagged>>,
    next: Vec<Tagged>,
    cohort: CohortScratch,
}

/// The wave-prefix pass's slice of [`WaveScratch`], split out so the batch
/// loop can borrow it independently of the flight buffers.
#[derive(Default)]
struct CohortScratch {
    cohorts: Vec<(usize, FlatId, Vec<usize>)>,
    spare: Vec<Vec<usize>>,
}

thread_local! {
    static WAVE_SCRATCH: std::cell::RefCell<WaveScratch> =
        std::cell::RefCell::new(WaveScratch::default());
}

/// The generic packet driver: topology, precomputed next hops and the hop
/// budget — everything the dispatch loop needs that is not view resolution
/// or egress delivery. Both planes build one per injection call; it borrows
/// and costs nothing to construct.
pub struct Driver<'a> {
    topology: &'a Topology,
    next_hops: &'a NextHops,
    hop_budget: usize,
    metrics: Option<&'a PlaneTelemetry>,
}

impl<'a> Driver<'a> {
    /// A driver over a topology with a precomputed next-hop table and a hop
    /// budget.
    pub fn new(topology: &'a Topology, next_hops: &'a NextHops, hop_budget: usize) -> Driver<'a> {
        Driver {
            topology,
            next_hops,
            hop_budget,
            metrics: None,
        }
    }

    /// Attach the plane's telemetry bundle: the loop records per-instance
    /// counters and carries sampled packet traces. `None` (the default)
    /// reduces telemetry to a branch per recording site.
    pub fn with_metrics(mut self, metrics: Option<&'a PlaneTelemetry>) -> Driver<'a> {
        self.metrics = metrics;
        self
    }

    /// Drive a batch of packets to completion — the single dispatch loop of
    /// the workspace.
    ///
    /// Execution is grouped by switch: all in-flight packets currently at
    /// the same switch are drained together under one [`StoreLease`] (one
    /// store-lock acquisition per group) with each distinct epoch's view
    /// resolved once for the group. A packet that fails loses its remaining
    /// in-flight copies, and never affects the rest of the batch; state
    /// side effects that already happened stay, as they always did. The
    /// sink may already have seen some of a failed packet's deliveries:
    /// set-collecting adapters discard them along with the error, while
    /// queue-delivering sinks cannot retract what was already enqueued (the
    /// distributed plane's historical semantics — an egress queue is a
    /// wire, not a buffer the driver owns).
    ///
    /// Batch entries may be owned packets or references — a batch of one
    /// borrowed packet clones it exactly once, into its in-flight copy.
    pub fn run_batch<R, S, P>(
        &self,
        resolver: &R,
        sink: &mut S,
        batch: &[(PortId, P)],
    ) -> BatchResults<R::Error>
    where
        R: ViewResolver,
        S: EgressSink,
        P: std::borrow::Borrow<Packet>,
    {
        let start = self.metrics.map(|_| std::time::Instant::now());
        let mut tally = BatchTally::default();
        // One countdown reservation covers the whole batch: `samples` holds
        // the (ascending) admitted-packet offsets to trace, almost always
        // none. Offsets index *admitted* packets, so a rejected port never
        // shifts which packet a trace follows mid-batch.
        let samples = match self.metrics {
            Some(m) => m.telemetry().tracer().sample_offsets(batch.len() as u64),
            None => Vec::new(),
        };
        let mut next_sample = samples.iter().copied().peekable();
        let mut results: BatchResults<R::Error> = batch.iter().map(|_| Ok(None)).collect();
        let mut views: Vec<(u64, Option<R::View<'_>>)> = Vec::new();
        // Wave scheduling: each wave distributes the in-flight packets into
        // per-switch buckets (a stable one-move-per-flight bucket sort —
        // arrival order within a switch is preserved, and nothing as large
        // as a `Tagged` is ever swapped around by a comparison sort) and
        // processes each non-empty bucket as one group — one store lease
        // and one view resolution per (switch, epoch) per wave. Flights
        // forwarded during a wave join the next one. All the flight buffers
        // live in the thread-local scratch and persist across batches, so a
        // warmed-up worker runs the whole wave loop without allocating.
        WAVE_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let WaveScratch {
                pending,
                buckets,
                next,
                cohort,
            } = scratch;
            pending.clear();
            next.clear();
            let switches = self.topology.num_nodes();
            if buckets.len() < switches {
                buckets.resize_with(switches, Vec::new);
            }
            for (origin, (port, packet)) in batch.iter().enumerate() {
                let Some(ingress) = self.topology.port_switch(*port) else {
                    results[origin] = Err(SimError::UnknownPort(*port).into());
                    continue;
                };
                match resolver.ingress(ingress) {
                    Err(e) => results[origin] = Err(e),
                    Ok(None) => {} // nothing installed: empty egress
                    Ok(Some((epoch, root))) => {
                        results[origin] = Ok(Some(epoch));
                        let trace = match self.metrics {
                            Some(m) => {
                                let admitted = tally.packets;
                                tally.admit(ingress.0);
                                if next_sample.next_if_eq(&admitted).is_some() {
                                    Some(Box::new(m.telemetry().tracer().start(port.0, epoch)))
                                } else {
                                    None
                                }
                            }
                            None => None,
                        };
                        pending.push(Tagged {
                            flight: InFlight::ingress(
                                packet.borrow().clone(),
                                *port,
                                ingress,
                                root,
                            ),
                            origin,
                            epoch,
                            trace,
                        });
                    }
                }
            }
            while !pending.is_empty() {
                for tagged in pending.drain(..) {
                    buckets[tagged.flight.at.0].push(tagged);
                }
                for (switch, bucket) in buckets.iter_mut().enumerate().take(switches) {
                    if bucket.is_empty() {
                        continue;
                    }
                    let mut group = std::mem::take(bucket);
                    self.run_group(
                        resolver,
                        sink,
                        SwitchId(switch),
                        &mut group,
                        &mut views,
                        next,
                        &mut results,
                        cohort,
                        &mut tally,
                    );
                    *bucket = group; // keep the bucket's capacity warm
                }
                std::mem::swap(pending, next);
            }
        });
        if let (Some(m), Some(t0)) = (self.metrics, start) {
            m.batch_ns.record(t0.elapsed().as_nanos() as u64);
            tally.flush(m);
            let errors = results.iter().filter(|r| r.is_err()).count();
            if errors > 0 {
                m.errors.add(errors as u64);
            }
        }
        results
    }

    /// Drain one switch's group: every flight currently at `switch`, plus
    /// any copies forked while draining, executes under a single
    /// [`StoreLease`] with each distinct epoch's view resolved once.
    /// Forwarded flights land in `next` (the following wave); failures land
    /// in `results`.
    #[allow(clippy::too_many_arguments)]
    fn run_group<'r, R: ViewResolver, S: EgressSink>(
        &self,
        resolver: &'r R,
        sink: &mut S,
        switch: SwitchId,
        group: &mut Vec<Tagged>,
        views: &mut Vec<(u64, Option<R::View<'r>>)>,
        next: &mut Vec<Tagged>,
        results: &mut BatchResults<R::Error>,
        scratch: &mut CohortScratch,
        tally: &mut BatchTally,
    ) {
        let mut lease = StoreLease::new(resolver.store(switch));
        views.clear();
        // Phase one, lock-free: advance every flight's stateless prefix
        // through the table program, a dispatch stage at a time across the
        // whole group. Only survivors still need the store below.
        self.wave_prefix(resolver, switch, group, views, results, scratch, tally);
        // Phase two, locked: drain the group in place under one store lease.
        // Flights are taken out of their slot (an inert placeholder stays
        // behind) so forked copies can be appended while the walk is live.
        let mut visits = 0u64;
        let mut idx = 0;
        while idx < group.len() {
            let mut tagged = std::mem::take(&mut group[idx]);
            idx += 1;
            if results[tagged.origin].is_err() {
                continue; // a sibling copy already failed this packet
            }
            if tagged.flight.hops > self.hop_budget {
                results[tagged.origin] = Err(SimError::HopBudgetExceeded.into());
                continue;
            }
            visits += 1;
            let view_idx = match views.iter().position(|(e, _)| *e == tagged.epoch) {
                Some(idx) => idx,
                None => match resolver.resolve(switch, tagged.epoch) {
                    Ok(view) => {
                        views.push((tagged.epoch, view));
                        views.len() - 1
                    }
                    Err(e) => {
                        results[tagged.origin] = Err(e);
                        continue;
                    }
                },
            };
            let Some(view) = views[view_idx].1.as_ref() else {
                // A switch without a configuration only forwards,
                // towards the packet's egress port if it has one.
                match self.forward_unconfigured(&mut tagged.flight) {
                    Ok(()) => next.push(tagged),
                    Err(e) => results[tagged.origin] = Err(e.into()),
                }
                continue;
            };
            // A sampled packet opens a hop record for this visit; the step
            // below fills in the state variables it touches, and the
            // dispatch arms stamp the outcome.
            if let Some(trace) = tagged.trace.as_deref_mut() {
                trace.hops.push(HopRecord::begin(
                    switch.0,
                    self.topology.node_name(switch),
                    tagged.epoch,
                    progress_tag(&tagged.flight.progress),
                ));
            }
            let step = match process_at_switch(
                view.local_vars(),
                view.flat(),
                view.tables(),
                &mut lease,
                &mut tagged.flight,
                tagged.trace.as_deref_mut().and_then(|t| t.hops.last_mut()),
            ) {
                Ok(step) => step,
                Err(e) => {
                    note_outcome(&mut tagged, || "error".to_string());
                    results[tagged.origin] = Err(e.into());
                    continue;
                }
            };
            match step {
                StepOutcome::Emit(outport) => {
                    note_outcome(&mut tagged, || format!("emit:port{}", outport.0));
                    if view.serves_port(outport) {
                        // The flight ends here: take its packet instead of
                        // cloning it for delivery.
                        let mut clean = std::mem::take(&mut tagged.flight.pkt);
                        strip_snap_header(&mut clean);
                        sink.deliver(tagged.origin, switch, outport, clean, tagged.epoch);
                        self.record_delivery(&mut tagged, switch, outport, tally);
                    } else {
                        // Pure forwarding from here to the delivery switch:
                        // resolve the delivery in place instead of paying
                        // another wave for a hop that can only emit.
                        if let Err(e) =
                            self.deliver_remote(resolver, sink, &mut tagged, outport, tally)
                        {
                            results[tagged.origin] = Err(e);
                        }
                    }
                }
                StepOutcome::Dropped => {
                    note_outcome(&mut tagged, || "drop".to_string());
                    if let Some(m) = self.metrics {
                        tally.policy_drops += 1;
                        if let Some(mut trace) = tagged.trace.take() {
                            trace.dropped = true;
                            m.telemetry().tracer().finish(*trace);
                        }
                    }
                }
                StepOutcome::NeedState(var) => {
                    note_outcome(&mut tagged, || format!("need-state:{var}"));
                    let Some(owner) = view.owner(var) else {
                        results[tagged.origin] = Err(missing_placement_error(var).into());
                        continue;
                    };
                    if owner == switch {
                        // The view's placement and local_vars disagree;
                        // forwarding "towards" the owner would spin in
                        // place forever.
                        results[tagged.origin] = Err(misplaced_state_error(var).into());
                        continue;
                    }
                    // The packet can only be forwarded until it reaches the
                    // owner, so jump there in one step (full hop count
                    // charged) instead of re-entering the wave loop per hop.
                    match self.next_hops.jump_towards(&mut tagged.flight, owner) {
                        Ok(()) => next.push(tagged),
                        Err(e) => results[tagged.origin] = Err(e.into()),
                    }
                }
                StepOutcome::Fork(children) => {
                    note_outcome(&mut tagged, || format!("fork:{}", children.len()));
                    // The trace follows the first forked copy only.
                    let mut trace = tagged.trace.take();
                    for flight in children {
                        group.push(Tagged {
                            flight,
                            origin: tagged.origin,
                            epoch: tagged.epoch,
                            trace: trace.take(),
                        });
                    }
                }
            }
        }
        group.clear();
        // Merge buffered replica deltas into the authoritative shards
        // before the lease drops — unconditionally, not only when metrics
        // are attached: the flush is what makes the writes visible.
        lease.flush();
        if self.metrics.is_some() {
            if visits > 0 {
                bump(&mut tally.switch_hops, switch.0, visits);
            }
            if lease.state_writes() > 0 {
                bump(&mut tally.state_writes, switch.0, lease.state_writes());
            }
        }
    }

    /// Account a completed delivery: the batch tally, and — for a sampled
    /// packet — the finished trace.
    fn record_delivery(
        &self,
        tagged: &mut Tagged,
        at: SwitchId,
        port: PortId,
        tally: &mut BatchTally,
    ) {
        let Some(m) = self.metrics else {
            return;
        };
        tally.deliveries += 1;
        tally.delivery_hops.record(tagged.flight.hops as u64);
        if let Some(mut trace) = tagged.trace.take() {
            trace.egress = Some((at.0, port.0));
            m.telemetry().tracer().finish(*trace);
        }
    }

    /// The wave-prefix pass of one group: before any store access, advance
    /// the *stateless prefix* of every resumable flight through the table
    /// program, and park each flight at its first state test or at a leaf.
    ///
    /// Flights parked at the same node under the same view form a cohort,
    /// and cohorts step together: one dispatch stage (or stateless branch)
    /// is resolved against every member's field column before any member
    /// moves on — a table-dispatch loop per stage over the wave, keeping
    /// the stage's lookup structure hot instead of re-walking the diagram
    /// per packet. Successor nodes strictly decrease in the flat numbering,
    /// so the cohort work-list terminates.
    ///
    /// The pass is infallible per flight (field tests cannot error and no
    /// store is touched) and never passes a state test, so it is safe to
    /// run before the [`StoreLease`] is acquired: packets whose stateless
    /// prefix ends in a drop or a stateless emit never contend for the
    /// lock at all. Survivor counts land on this instance's
    /// `driver.wave_prefix.*` counters ([`PlaneTelemetry`]).
    #[allow(clippy::too_many_arguments)]
    fn wave_prefix<'r, R: ViewResolver>(
        &self,
        resolver: &'r R,
        switch: SwitchId,
        group: &mut [Tagged],
        views: &mut Vec<(u64, Option<R::View<'r>>)>,
        results: &mut BatchResults<R::Error>,
        scratch: &mut CohortScratch,
        tally: &mut BatchTally,
    ) {
        // Seed cohorts, keyed by (view, node): every member is about to
        // execute the same dispatch step. Member lists are recycled through
        // the scratch pool, so a warmed-up driver forms cohorts without
        // allocating.
        let cohorts = &mut scratch.cohorts;
        debug_assert!(cohorts.is_empty());
        let mut packets = 0u64;
        for (gi, tagged) in group.iter().enumerate() {
            if results[tagged.origin].is_err() || tagged.flight.hops > self.hop_budget {
                continue;
            }
            let Progress::AtNode(node) = tagged.flight.progress else {
                continue;
            };
            if node.is_leaf() {
                continue;
            }
            let epoch = tagged.epoch;
            let view_idx = match views.iter().position(|(e, _)| *e == epoch) {
                Some(idx) => idx,
                None => match resolver.resolve(switch, epoch) {
                    Ok(view) => {
                        views.push((epoch, view));
                        views.len() - 1
                    }
                    Err(e) => {
                        results[tagged.origin] = Err(e);
                        continue;
                    }
                },
            };
            if views[view_idx].1.is_none() {
                continue; // unconfigured switch: the locked phase forwards it
            }
            packets += 1;
            match cohorts
                .iter_mut()
                .find(|(v, n, _)| *v == view_idx && *n == node)
            {
                Some((_, _, members)) => members.push(gi),
                None => {
                    let mut members = scratch.spare.pop().unwrap_or_default();
                    members.push(gi);
                    cohorts.push((view_idx, node, members));
                }
            }
        }
        let mut survivors = 0u64;
        while let Some((view_idx, node, mut members)) = cohorts.pop() {
            let view = views[view_idx]
                .1
                .as_ref()
                .expect("cohorts only form over configured views");
            let flat = view.flat();
            let tables = view.tables();
            for gi in members.drain(..) {
                let flight = &mut group[gi].flight;
                match tables.step_stateless(flat, node, &flight.pkt) {
                    None => {
                        // A state test: the stateless prefix ends here and
                        // the flight pays the locked phase.
                        flight.progress = Progress::AtNode(node);
                        survivors += 1;
                    }
                    Some(next) if next.is_leaf() => {
                        flight.progress = Progress::AtNode(next);
                        if flat.leaf(next).writes_state() {
                            survivors += 1;
                        }
                    }
                    Some(next) => {
                        flight.progress = Progress::AtNode(next);
                        match cohorts
                            .iter_mut()
                            .find(|(v, n, _)| *v == view_idx && *n == next)
                        {
                            Some((_, _, members)) => members.push(gi),
                            None => {
                                let mut fresh = scratch.spare.pop().unwrap_or_default();
                                fresh.push(gi);
                                cohorts.push((view_idx, next, fresh));
                            }
                        }
                    }
                }
            }
            scratch.spare.push(members);
        }
        if packets > 0 && self.metrics.is_some() {
            tally.wave_prefix_packets += packets;
            tally.wave_prefix_survivors += survivors;
        }
    }

    /// Finish an emitted flight whose egress port lives on another switch:
    /// jump the pure-forwarding remainder of its path in one step, then
    /// deliver against the target switch's view — the same checks the
    /// packet would have met had it re-entered the wave loop there (hop
    /// budget after the jump, a configured view that actually serves the
    /// port), collapsed into its emitting wave.
    fn deliver_remote<R: ViewResolver, S: EgressSink>(
        &self,
        resolver: &R,
        sink: &mut S,
        tagged: &mut Tagged,
        port: PortId,
        tally: &mut BatchTally,
    ) -> Result<(), R::Error> {
        let bad_port = || SimError::BadOutPort(Value::Int(port.0 as i64));
        let target = self.topology.port_switch(port).ok_or_else(bad_port)?;
        if target == tagged.flight.at {
            // The port is attached right here, yet this switch's view does
            // not serve it (misconfiguration): forwarding "towards" it
            // would spin in place forever.
            return Err(bad_port().into());
        }
        self.next_hops.jump_towards(&mut tagged.flight, target)?;
        if tagged.flight.hops > self.hop_budget {
            return Err(SimError::HopBudgetExceeded.into());
        }
        let serves = match resolver.resolve(target, tagged.epoch)? {
            Some(view) => view.serves_port(port),
            // An unconfigured switch only forwards; it cannot deliver.
            None => false,
        };
        if !serves {
            return Err(bad_port().into());
        }
        let mut clean = std::mem::take(&mut tagged.flight.pkt);
        strip_snap_header(&mut clean);
        sink.deliver(tagged.origin, target, port, clean, tagged.epoch);
        self.record_delivery(tagged, target, port, tally);
        Ok(())
    }

    /// Forwarding for a switch with no configuration: towards the packet's
    /// already-assigned egress port, or an error if it has none.
    fn forward_unconfigured(&self, flight: &mut InFlight) -> Result<(), SimError> {
        let outport = read_outport(&flight.pkt)?;
        self.forward_towards_port(flight, outport)
    }

    /// Fast-forward to the switch hosting `port`, with the shared
    /// spin-in-place guard: if the port is attached to the *current* switch
    /// yet its view does not serve it (misconfiguration), forwarding
    /// "towards" it would spin forever, so the packet fails instead. A
    /// packet travelling to egress is pure forwarding at every switch in
    /// between, so the whole remaining path is charged in one jump and the
    /// packet rejoins the wave loop only at its delivery switch.
    fn forward_towards_port(&self, flight: &mut InFlight, port: PortId) -> Result<(), SimError> {
        let target = self
            .topology
            .port_switch(port)
            .ok_or(SimError::BadOutPort(Value::Int(port.0 as i64)))?;
        if target == flight.at {
            return Err(SimError::BadOutPort(Value::Int(port.0 as i64)));
        }
        self.next_hops.jump_towards(flight, target)
    }
}
