//! The paper's running example end to end: DNS tunnel detection plus egress
//! assignment on the Figure 2 campus network, executed on the distributed
//! data-plane simulator.
//!
//! Run with: `cargo run -p snap-examples --bin dns_tunnel_campus`

use snap_apps as apps;
use snap_core::{Compiler, SolverChoice};
use snap_lang::prelude::*;
use snap_topology::{generators, PortId, TrafficMatrix};

fn main() {
    let threshold = 3;
    let program = apps::dns_tunnel_detect(threshold).seq(apps::assign_egress(6));

    let topo = generators::campus();
    let tm = TrafficMatrix::gravity(&topo, 600.0, 42);
    let compiler = Compiler::new(topo.clone(), tm).with_solver(SolverChoice::Heuristic);
    let compiled = compiler
        .compile(&program)
        .expect("running example compiles");

    println!("== placement ==");
    for (var, node) in &compiled.placement.placement {
        println!("  {var:<14} -> {}", topo.node_name(*node));
    }
    println!("== phase timings ==\n  {:?}", compiled.timings);

    // Drive an attack trace through the distributed network: a client in the
    // CS department receives DNS responses it never uses.
    let network = compiler.build_network(&compiled);
    let victim = Value::ip(10, 0, 6, 42);
    println!("== injecting {threshold} unanswered DNS responses for {victim} ==");
    let victim_display = victim.clone();
    for i in 0..threshold {
        let dns = Packet::new()
            .with(Field::SrcIp, Value::ip(8, 8, 8, 8))
            .with(Field::DstIp, victim.clone())
            .with(Field::SrcPort, 53)
            .with(Field::DnsRdata, Value::ip(93, 184, 216, (34 + i) as u8));
        let out = network
            .inject(PortId(1), &dns)
            .expect("simulation succeeds");
        println!("  response {}: {} packet(s) delivered", i + 1, out.len());
    }
    let store = network.aggregate_store();
    println!(
        "blacklist[{victim_display}] = {}",
        store.get(&StateVar::new("blacklist"), &[victim])
    );
}
