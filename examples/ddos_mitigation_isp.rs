//! A Bohatei-style DDoS defense bundle (SYN flood, UDP flood and DNS
//! amplification mitigation) compiled for an ISP-like topology.
//!
//! Run with: `cargo run --release -p snap-examples --bin ddos_mitigation_isp`

use snap_apps as apps;
use snap_core::{Compiler, SolverChoice};
use snap_lang::Policy;
use snap_topology::{generators, TrafficMatrix};

fn main() {
    // Guard each mitigation behind the protected prefix so the three
    // components never race on shared flows.
    let policy = Policy::par_all(vec![
        apps::syn_flood_detection(100),
        apps::udp_flood_mitigation(200),
        apps::dns_amplification_mitigation(),
    ])
    .seq(apps::assign_egress(8));

    let spec = snap_topology::RandomTopologySpec {
        name: "isp-demo".into(),
        switches: 40,
        directed_links: 160,
        external_ports: Some(8),
        seed: 21,
    };
    let topo = generators::random_topology(&spec);
    let tm = TrafficMatrix::gravity(&topo, 5_000.0, 21);
    let compiler = Compiler::new(topo.clone(), tm).with_solver(SolverChoice::Heuristic);
    match compiler.compile(&policy) {
        Ok(compiled) => {
            println!("compiled DDoS bundle for {}", topo);
            println!("state placement:");
            for (var, node) in &compiled.placement.placement {
                println!("  {var:<16} -> {}", topo.node_name(*node));
            }
            println!(
                "total link utilization: {:.3}   max link utilization: {:.3}",
                compiled.placement.total_utilization, compiled.placement.max_utilization
            );
            println!(
                "xFDD nodes: {}   stateful flows: {}   compile time: {:?}",
                compiled.xfdd.size(),
                compiled.mapping.num_stateful_flows(),
                compiled.timings.total()
            );
        }
        Err(e) => eprintln!("compilation failed: {e}"),
    }
}
