//! The standing soak: an ISP-scale igen network under concurrent traffic
//! and policy churn for over a minute, with interval monitors checking
//! epoch purity, exact state totals, per-port FIFO and bounded memory.
//! Writes the `BENCH_soak.json` trajectory artifact and exits nonzero on
//! any invariant violation, so CI can run it directly.
//!
//! ```text
//! cargo run --release -p snap-examples --example soak_isp          # full ≥60 s run
//! SNAP_SOAK_SMOKE=1 cargo run --release --example soak_isp         # ~5 s CI smoke
//! SNAP_SOAK_TRANSPORT=tcp ...                                      # framed-TCP agent links
//! ```

use snap_soak::{run, SoakConfig};

fn main() {
    let smoke = std::env::var("SNAP_SOAK_SMOKE").is_ok_and(|v| v == "1");
    let mut config = if smoke {
        SoakConfig::smoke()
    } else {
        SoakConfig::isp()
    };
    config.progress = true;

    eprintln!(
        "soak: igen-{} topology, {} workers x batch {}, {:.0}s traffic, churn every {:.1}s ({}, {} transport)",
        config.switches,
        config.workers,
        config.batch_size,
        config.duration.as_secs_f64(),
        config.churn_period.as_secs_f64(),
        if smoke { "smoke" } else { "full" },
        config.transport.label(),
    );

    let outcome = run(config);

    println!("{}", outcome.summary());
    for v in &outcome.violations {
        eprintln!(
            "violation [interval {}] {}: {}",
            v.interval, v.monitor, v.detail
        );
    }
    for e in &outcome.error_samples {
        eprintln!("error sample: {e}");
    }

    let artifact = "BENCH_soak.json";
    std::fs::write(artifact, outcome.to_json()).expect("write BENCH_soak.json");
    println!("wrote {artifact}");

    if !outcome.passed() {
        std::process::exit(1);
    }
}
