//! Quickstart for the distribution plane: a controller, one switch agent
//! per campus switch, delta-shipped updates and epoch-consistent traffic.
//!
//! ```text
//! cargo run --release -p snap-examples --example distrib_campus
//! cargo run --release -p snap-examples --example distrib_campus -- --transport tcp
//! cargo run --release -p snap-examples --example distrib_campus -- --transport tcp-proc
//! ```
//!
//! Three transports:
//!
//! * `channel` (default) — in-process mpsc links, agents on threads.
//! * `tcp` — the same agent threads, but every controller↔agent link is a
//!   framed TCP connection over loopback.
//! * `tcp-proc` — each agent is a **separate OS process** (this binary
//!   re-executed with the internal `--agent` flag) speaking the framed
//!   protocol to the controller's listener. The data plane lives with the
//!   agents, so this mode demonstrates the control plane only: bootstrap
//!   resync, working-set flips and a zero-node rollback over real
//!   process boundaries.

use snap_apps as apps;
use snap_core::SolverChoice;
use snap_dataplane::TrafficEngine;
use snap_distrib::{
    deploy_in_process, deploy_tcp, Controller, DeployOptions, SwitchAgent, TcpAgentEndpoint,
    TcpTransportListener,
};
use snap_lang::prelude::*;
use snap_session::CompilerSession;
use snap_topology::generators::campus;
use snap_topology::{NodeId as SwitchId, PortId, Topology, TrafficMatrix};
use std::net::SocketAddr;
use std::process::{Child, Command};

fn campus_session() -> (Topology, CompilerSession) {
    let topo = campus();
    let tm = TrafficMatrix::gravity(&topo, 600.0, 42);
    let session = CompilerSession::new(topo.clone(), tm).with_solver(SolverChoice::Heuristic);
    (topo, session)
}

fn calm_policy() -> Policy {
    apps::dns_tunnel_detect(3).seq(apps::assign_egress(6))
}

fn attack_policy() -> Policy {
    apps::dns_tunnel_detect(8).seq(apps::assign_egress(6))
}

/// Child-process entry: run one switch agent against the controller's
/// listener until it sends `Shutdown`. The campus topology is
/// deterministic, so the child derives its own name and port set.
fn run_agent(addr: &str, switch: u64) -> ! {
    let addr: SocketAddr = addr.parse().expect("valid listener address");
    let switch = SwitchId(switch as usize);
    let topo = campus();
    let ports: Vec<PortId> = topo
        .external_ports()
        .filter(|(_, node)| *node == switch)
        .map(|(port, _)| port)
        .collect();
    let agent = std::sync::Arc::new(SwitchAgent::new(
        switch,
        topo.node_name(switch),
        ports,
        1024,
    ));
    let endpoint = TcpAgentEndpoint::connect(addr, switch).expect("connect to controller");
    agent.run(endpoint);
    std::process::exit(0);
}

/// The multi-process demo: spawn one agent process per campus switch, run
/// the 2PC update sequence across real process boundaries.
fn run_tcp_proc() {
    let (topo, session) = campus_session();
    let listener = TcpTransportListener::bind(("127.0.0.1", 0)).expect("bind loopback listener");
    let addr = listener.local_addr().expect("listener address");
    let exe = std::env::current_exe().expect("current executable path");

    let mut children: Vec<Child> = Vec::new();
    for switch in topo.nodes() {
        children.push(
            Command::new(&exe)
                .arg("--agent")
                .arg(addr.to_string())
                .arg(switch.0.to_string())
                .spawn()
                .expect("spawn agent process"),
        );
    }

    // Children connect in whatever order the OS schedules them; the hello
    // frame names each connection's switch, so accept-then-attach by the
    // claimed id.
    let mut controller = Controller::new(session);
    let mut attached = 0usize;
    while attached < children.len() {
        let (claimed, endpoint) = listener
            .accept_agent(controller.reply_sender())
            .expect("accept agent connection");
        controller.attach(claimed, Box::new(endpoint));
        attached += 1;
    }
    println!(
        "controller on {addr}: {} agent processes attached",
        controller.agent_count()
    );

    let report = controller.update_policy(&calm_policy()).unwrap();
    println!(
        "epoch {}: bootstrap resynced {} agent processes ({} B full program each, prepare {:?}, commit {:?})",
        report.epoch, report.resyncs, report.resync_bytes, report.prepare_time, report.commit_time
    );
    for (label, policy) in [("attack", attack_policy()), ("calm again", calm_policy())] {
        let report = controller.update_policy(&policy).unwrap();
        println!(
            "epoch {}: {label}: {} new nodes, {} B delta vs {} B full ({:.1}%)",
            report.epoch,
            report.new_nodes,
            report.delta_bytes,
            report.full_bytes,
            100.0 * report.delta_ratio()
        );
    }
    let mux = controller.mux_stats();
    println!(
        "reply mux after three epochs: {} stale, {} duplicate acks discarded",
        mux.stale, mux.duplicates
    );

    // Shutdown fans out to every process; each child exits its run loop.
    controller.shutdown();
    for mut child in children {
        let status = child.wait().expect("agent process reaped");
        assert!(status.success(), "agent process exited with {status}");
    }
    println!("agent processes shut down cleanly");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 4 && args[1] == "--agent" {
        run_agent(&args[2], args[3].parse().expect("switch id"));
    }
    let transport = match args.iter().position(|a| a == "--transport") {
        Some(i) => args.get(i + 1).map(String::as_str).unwrap_or("channel"),
        None => "channel",
    };
    if transport == "tcp-proc" {
        run_tcp_proc();
        return;
    }

    // A compiler session for the campus topology, wrapped by a controller
    // with one agent (own thread) per switch — linked over in-process
    // channels or framed loopback TCP, same protocol either way.
    let (_topo, session) = campus_session();
    let mut deployment = match transport {
        "tcp" => deploy_tcp(session, 1024, DeployOptions::default()).expect("tcp deploy"),
        _ => deploy_in_process(session, 1024),
    };
    println!(
        "deployed {} switch agents on the campus topology ({transport} transport)",
        deployment.controller.agent_count()
    );

    // First publish: every agent bootstraps its mirror with a full-table
    // resync, then commits epoch 1 through the two-phase protocol.
    let calm = calm_policy();
    let report = deployment.controller.update_policy(&calm).unwrap();
    println!(
        "epoch {}: bootstrap shipped {} B to {} agents (prepare {:?}, commit {:?})",
        report.epoch, report.delta_bytes, report.resyncs, report.prepare_time, report.commit_time
    );

    // Traffic flows through the agents; egress lands in bounded per-port
    // FIFO queues on the owning agent.
    let dns_reply = Packet::new()
        .with(Field::SrcIp, Value::ip(8, 8, 8, 8))
        .with(Field::DstIp, Value::ip(10, 0, 6, 9))
        .with(Field::SrcPort, 53)
        .with(Field::DnsRdata, Value::ip(1, 2, 3, 4));
    let out = deployment.network.inject(PortId(1), &dns_reply).unwrap();
    println!(
        "injected a DNS reply under epoch {}: delivered to {:?}",
        out.epoch,
        out.delivered.iter().map(|(p, _)| *p).collect::<Vec<_>>()
    );

    // A working-set edit (attack threshold) ships only new nodes; flipping
    // back ships a zero-node delta — the mirrors already hold everything.
    let attack = attack_policy();
    for (label, policy) in [("attack", &attack), ("calm again", &calm)] {
        let report = deployment.controller.update_policy(policy).unwrap();
        println!(
            "epoch {}: {label}: {} new nodes, {} B delta vs {} B full ({:.1}%)",
            report.epoch,
            report.new_nodes,
            report.delta_bytes,
            report.full_bytes,
            100.0 * report.delta_ratio()
        );
    }

    // Updated program, same switch state: the suspicion counter counted the
    // reply above and survives every commit.
    let out = deployment.network.inject(PortId(1), &dns_reply).unwrap();
    assert_eq!(out.epoch, 3);
    let susp = deployment
        .network
        .aggregate_store()
        .get(&"susp-client".into(), &[Value::ip(10, 0, 6, 9)]);
    println!("suspicion count after two replies across three epochs: {susp:?}");

    // Drain the egress queue of port 6: FIFO events stamped with their
    // epoch and per-port sequence number.
    for event in deployment.network.drain_port(PortId(6)) {
        println!(
            "  port 6 egress #{} (epoch {}): dst {:?}",
            event.seq,
            event.epoch,
            event.packet.get(&Field::DstIp)
        );
    }

    // The distribution plane is a `TrafficTarget`: the same multi-worker
    // `TrafficEngine` that drives the in-process `Network` pumps batched
    // traffic through the agents via the shared packet driver (in-flight
    // packets grouped per switch, one store-lock acquisition per group).
    let load: Vec<(PortId, Packet)> = (0..240)
        .map(|i| {
            (
                PortId(1 + i % 6),
                Packet::new()
                    .with(Field::SrcIp, Value::ip(8, 8, 8, 8))
                    .with(Field::DstIp, Value::ip(10, 0, 6, (10 + i % 40) as u8))
                    .with(Field::SrcPort, 53)
                    .with(Field::DnsRdata, Value::ip(1, 2, (i % 9) as u8, 4)),
            )
        })
        .collect();
    let engine = TrafficEngine::new(3).with_batch_size(32);
    let report = engine.run(&deployment.network, &load);
    assert!(report.is_clean(), "errors: {:?}", report.errors);
    let drained = deployment.network.drain_port(PortId(6)).len();
    println!(
        "traffic engine: {} workers drove {} packets (epochs {:?}), {} delivered to port 6",
        engine.workers(),
        report.processed,
        report.epochs,
        drained
    );
    deployment.shutdown();
    println!("agents shut down cleanly");
}
