//! Quickstart for the distribution plane: a controller, one switch agent
//! per campus switch, delta-shipped updates and epoch-consistent traffic.
//!
//! ```text
//! cargo run --release -p snap-examples --example distrib_campus
//! ```

use snap_apps as apps;
use snap_core::SolverChoice;
use snap_dataplane::TrafficEngine;
use snap_distrib::deploy_in_process;
use snap_lang::prelude::*;
use snap_session::CompilerSession;
use snap_topology::generators::campus;
use snap_topology::{PortId, TrafficMatrix};

fn main() {
    // A compiler session for the campus topology, wrapped by a controller
    // with one agent (own thread, channel transport) per switch.
    let topo = campus();
    let tm = TrafficMatrix::gravity(&topo, 600.0, 42);
    let session = CompilerSession::new(topo, tm).with_solver(SolverChoice::Heuristic);
    let mut deployment = deploy_in_process(session, 1024);
    println!(
        "deployed {} switch agents on the campus topology",
        deployment.controller.agent_count()
    );

    // First publish: every agent bootstraps its mirror with a full-table
    // resync, then commits epoch 1 through the two-phase protocol.
    let calm = apps::dns_tunnel_detect(3).seq(apps::assign_egress(6));
    let report = deployment.controller.update_policy(&calm).unwrap();
    println!(
        "epoch {}: bootstrap shipped {} B to {} agents (prepare {:?}, commit {:?})",
        report.epoch, report.delta_bytes, report.resyncs, report.prepare_time, report.commit_time
    );

    // Traffic flows through the agents; egress lands in bounded per-port
    // FIFO queues on the owning agent.
    let dns_reply = Packet::new()
        .with(Field::SrcIp, Value::ip(8, 8, 8, 8))
        .with(Field::DstIp, Value::ip(10, 0, 6, 9))
        .with(Field::SrcPort, 53)
        .with(Field::DnsRdata, Value::ip(1, 2, 3, 4));
    let out = deployment.network.inject(PortId(1), &dns_reply).unwrap();
    println!(
        "injected a DNS reply under epoch {}: delivered to {:?}",
        out.epoch,
        out.delivered.iter().map(|(p, _)| *p).collect::<Vec<_>>()
    );

    // A working-set edit (attack threshold) ships only new nodes; flipping
    // back ships a zero-node delta — the mirrors already hold everything.
    let attack = apps::dns_tunnel_detect(8).seq(apps::assign_egress(6));
    for (label, policy) in [("attack", &attack), ("calm again", &calm)] {
        let report = deployment.controller.update_policy(policy).unwrap();
        println!(
            "epoch {}: {label}: {} new nodes, {} B delta vs {} B full ({:.1}%)",
            report.epoch,
            report.new_nodes,
            report.delta_bytes,
            report.full_bytes,
            100.0 * report.delta_ratio()
        );
    }

    // Updated program, same switch state: the suspicion counter counted the
    // reply above and survives every commit.
    let out = deployment.network.inject(PortId(1), &dns_reply).unwrap();
    assert_eq!(out.epoch, 3);
    let susp = deployment
        .network
        .aggregate_store()
        .get(&"susp-client".into(), &[Value::ip(10, 0, 6, 9)]);
    println!("suspicion count after two replies across three epochs: {susp:?}");

    // Drain the egress queue of port 6: FIFO events stamped with their
    // epoch and per-port sequence number.
    for event in deployment.network.drain_port(PortId(6)) {
        println!(
            "  port 6 egress #{} (epoch {}): dst {:?}",
            event.seq,
            event.epoch,
            event.packet.get(&Field::DstIp)
        );
    }

    // The distribution plane is a `TrafficTarget`: the same multi-worker
    // `TrafficEngine` that drives the in-process `Network` pumps batched
    // traffic through the agents via the shared packet driver (in-flight
    // packets grouped per switch, one store-lock acquisition per group).
    let load: Vec<(PortId, Packet)> = (0..240)
        .map(|i| {
            (
                PortId(1 + i % 6),
                Packet::new()
                    .with(Field::SrcIp, Value::ip(8, 8, 8, 8))
                    .with(Field::DstIp, Value::ip(10, 0, 6, (10 + i % 40) as u8))
                    .with(Field::SrcPort, 53)
                    .with(Field::DnsRdata, Value::ip(1, 2, (i % 9) as u8, 4)),
            )
        })
        .collect();
    let engine = TrafficEngine::new(3).with_batch_size(32);
    let report = engine.run(&deployment.network, &load);
    assert!(report.is_clean(), "errors: {:?}", report.errors);
    let drained = deployment.network.drain_port(PortId(6)).len();
    println!(
        "traffic engine: {} workers drove {} packets (epochs {:?}), {} delivered to port 6",
        engine.workers(),
        report.processed,
        report.epochs,
        drained
    );
    deployment.shutdown();
    println!("agents shut down cleanly");
}
