//! Shared nothing: the example binaries are standalone; this library target
//! exists only so the package has a stable build unit for `cargo doc`.
