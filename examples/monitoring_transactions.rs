//! Monitoring plus network transactions: the §2.1 composition
//! `(DNS-tunnel-detect + count[inport]++); assign-egress` together with the
//! honeypot transaction, showing that atomically-updated variables are
//! co-located by the compiler.
//!
//! Run with: `cargo run -p snap-examples --bin monitoring_transactions`

use snap_apps as apps;
use snap_core::{Compiler, SolverChoice};
use snap_lang::prelude::*;
use snap_topology::{generators, PortId, TrafficMatrix};

fn main() {
    let program = apps::dns_tunnel_detect(5)
        .par(apps::port_monitoring())
        .par(apps::honeypot_transaction())
        .seq(apps::assign_egress(6));

    let topo = generators::campus();
    let tm = TrafficMatrix::gravity(&topo, 600.0, 5);
    let compiler = Compiler::new(topo.clone(), tm).with_solver(SolverChoice::Heuristic);
    let compiled = compiler.compile(&program).expect("compiles");

    println!("placement:");
    for (var, node) in &compiled.placement.placement {
        println!("  {var:<14} -> {}", topo.node_name(*node));
    }
    let hon_ip = compiled.placement.placement[&StateVar::new("hon-ip")];
    let hon_port = compiled.placement.placement[&StateVar::new("hon-dstport")];
    assert_eq!(hon_ip, hon_port, "atomic variables must be co-located");
    println!(
        "honeypot transaction variables are co-located on {}",
        topo.node_name(hon_ip)
    );

    // Send one packet towards the honeypot and one ordinary packet.
    let network = compiler.build_network(&compiled);
    let to_honeypot = Packet::new()
        .with(Field::SrcIp, Value::ip(10, 0, 1, 9))
        .with(Field::DstIp, Value::ip(10, 0, 3, 10))
        .with(Field::DstPort, 445)
        .with(Field::InPort, 1);
    let ordinary = Packet::new()
        .with(Field::SrcIp, Value::ip(10, 0, 2, 9))
        .with(Field::DstIp, Value::ip(10, 0, 4, 10))
        .with(Field::InPort, 2);
    network.inject(PortId(1), &to_honeypot).unwrap();
    network.inject(PortId(2), &ordinary).unwrap();
    let store = network.aggregate_store();
    println!(
        "hon-ip[1] = {}   hon-dstport[1] = {}",
        store.get(&StateVar::new("hon-ip"), &[Value::Int(1)]),
        store.get(&StateVar::new("hon-dstport"), &[Value::Int(1)]),
    );
    println!(
        "count[1] = {}   count[2] = {}",
        store.get(&StateVar::new("count"), &[Value::Int(1)]),
        store.get(&StateVar::new("count"), &[Value::Int(2)]),
    );
}
