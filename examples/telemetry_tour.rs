//! Tour of the telemetry plane: drive a campus workload through a
//! distributed commit, then read everything back from one snapshot —
//! per-switch counters, egress queue stats, histograms, a sampled
//! end-to-end packet trace, the commit event log, and interval deltas
//! between successive snapshots rendered one line per interval.
//!
//! ```text
//! cargo run --release -p snap-examples --example telemetry_tour
//! ```

use snap_apps as apps;
use snap_core::SolverChoice;
use snap_dataplane::TrafficEngine;
use snap_distrib::deploy_in_process;
use snap_lang::prelude::*;
use snap_session::CompilerSession;
use snap_topology::generators::campus;
use snap_topology::{PortId, TrafficMatrix};

fn main() {
    // A distributed campus deployment. Telemetry is on by default: the
    // controller, the compiler session and every agent's data plane share
    // one registry, so a single snapshot covers all of them.
    let topo = campus();
    let tm = TrafficMatrix::gravity(&topo, 600.0, 42);
    let session = CompilerSession::new(topo, tm).with_solver(SolverChoice::Heuristic);
    let mut deployment = deploy_in_process(session, 1024);

    // Sample 1-in-10 packets into the trace ring so a short run is
    // guaranteed a few full hop-by-hop traces (the default is 1-in-1024).
    deployment
        .network
        .telemetry()
        .expect("telemetry is on by default")
        .telemetry()
        .tracer()
        .set_every(10);

    // Two distributed commits: the calm policy, then an attack-threshold
    // edit. Each two-phase commit lands in the event log with payload
    // sizes and per-agent prepare/commit timings.
    let calm = apps::dns_tunnel_detect(3).seq(apps::assign_egress(6));
    let attack = apps::dns_tunnel_detect(8).seq(apps::assign_egress(6));
    deployment.controller.update_policy(&calm).unwrap();
    deployment.controller.update_policy(&attack).unwrap();

    // Traffic arrives in waves; between waves the monitor pattern from
    // snap-soak applies: snapshot, diff against the previous snapshot
    // with `MetricsSnapshot::delta`, and render the interval as one line
    // of derived rates (pkts/s, commits, shard contention, queue depth).
    let start = std::time::Instant::now();
    let mut prev = deployment.network.metrics_snapshot();
    println!("interval deltas, one line per traffic wave:");
    for wave in 0..3 {
        let load: Vec<(PortId, Packet)> = (0..240)
            .map(|i| {
                (
                    PortId(1 + i % 6),
                    Packet::new()
                        .with(Field::SrcIp, Value::ip(8, 8, 8, 8))
                        .with(
                            Field::DstIp,
                            Value::ip(10, 0, 6, (10 + wave * 40 + i % 40) as u8),
                        )
                        .with(Field::SrcPort, 53)
                        .with(Field::DnsRdata, Value::ip(1, 2, (i % 9) as u8, 4)),
                )
            })
            .collect();
        let report = TrafficEngine::new(3)
            .with_batch_size(32)
            .run(deployment.network.as_ref(), &load);
        assert!(report.is_clean(), "errors: {:?}", report.errors);

        let snap = deployment.network.metrics_snapshot();
        let delta = snap.delta(&prev);
        let stats = snap_soak::IntervalStats::from_delta(
            wave,
            start.elapsed().as_secs_f64(),
            &delta,
            &snap,
        );
        println!("{}", stats.render_line());
        prev = snap;
    }

    // One snapshot, everything in it: counters, gauges, histograms,
    // per-switch and per-agent families, traces and commit events.
    let snap = deployment.network.metrics_snapshot();
    println!("{}", snap.render());

    // The sampled traces record each hop's switch, entry node in the flat
    // program, state reads/writes and outcome — pick a delivered one.
    if let Some(trace) = snap.traces.iter().find(|t| t.egress.is_some()) {
        println!("one sampled end-to-end trace:");
        println!("{}", trace.render());
    }

    // The commit event log, one prepare + one commit per epoch.
    println!("commit event log:");
    for record in &snap.events {
        println!("  {}", record.render());
    }

    // The same snapshot serializes to JSON for offline tooling.
    let json = snap.to_json();
    println!("JSON export: {} bytes", json.len());

    deployment.shutdown();
}
