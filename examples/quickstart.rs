//! Quickstart: write a stateful policy, run it against the formal semantics,
//! then compile it onto the campus topology of Figure 2.
//!
//! Run with: `cargo run -p snap-examples --bin quickstart`

use snap_core::{Compiler, SolverChoice};
use snap_lang::prelude::*;
use snap_topology::{generators, TrafficMatrix};

fn main() {
    // 1. A policy over the one big switch: count packets per ingress port,
    //    allow only DNS traffic to reach port 6, everything else to port 1.
    //    Policies can be written with the builder API...
    let counting = state_incr("count", vec![field(Field::InPort)]);
    // ...or parsed from the paper's surface syntax.
    let routing =
        parse_policy("if dstip = 10.0.6.0/24 & srcport = 53 then outport <- 6 else outport <- 1")
            .expect("valid SNAP syntax");
    let policy = counting.seq(routing);
    println!("policy:\n{}", policy_to_pretty_lines(&policy));

    // 2. Run it on a packet with the one-big-switch semantics.
    let pkt = Packet::new()
        .with(Field::InPort, 3)
        .with(Field::SrcPort, 53)
        .with(Field::DstIp, Value::ip(10, 0, 6, 9));
    let result = eval(&policy, &Store::new(), &pkt).expect("evaluation succeeds");
    println!("output packets: {:?}", result.packets);
    println!(
        "count[3] after one packet: {}",
        result.store.get(&StateVar::new("count"), &[Value::Int(3)])
    );

    // 3. Compile it for the campus topology: the compiler decides where the
    //    `count` array lives and how traffic is routed through it.
    let topo = generators::campus();
    let tm = TrafficMatrix::gravity(&topo, 600.0, 7);
    let compiler = Compiler::new(topo.clone(), tm).with_solver(SolverChoice::Heuristic);
    let compiled = compiler.compile(&policy).expect("compiles");
    for (var, node) in &compiled.placement.placement {
        println!("state `{var}` placed on switch {}", topo.node_name(*node));
    }
    println!(
        "xFDD: {} nodes, {} data-plane instructions, compile time {:?}",
        compiled.xfdd.size(),
        compiled.rules.total_instructions,
        compiled.timings.total()
    );
}
